//! The controlled scheduler behind [`explore`](crate::model::explore).
//!
//! Model threads are real OS threads, but only **one is ever runnable at
//! a time**: every synchronisation operation (lock, unlock, condvar
//! wait/notify, atomic access, spawn, join) enters the scheduler, which
//! decides — by consulting the current [`Schedule`] — which thread runs
//! next. Each decision among `n > 1` candidates is recorded as a choice
//! point, so a whole execution is summarised by its choice trace and can
//! be replayed or systematically enumerated (see `explore.rs`).
//!
//! Failures the scheduler itself detects:
//!
//! * **deadlock / lost wakeup** — no thread is runnable but at least one
//!   is blocked (a thread parked on a condvar that will never be
//!   notified again shows up exactly here);
//! * **panic** — any model thread panicking (a failed `assert!` in an
//!   invariant check) aborts the run and surfaces the message;
//! * **step-limit** — a schedule exceeding `max_steps` operations, the
//!   livelock guard.
//!
//! On failure the scheduler flips an `abort` flag and wakes every
//! blocked thread; model operations observe it and unwind with the
//! private [`AbortPayload`] panic so all OS threads terminate before the
//! failure is reported.

use std::any::Any;
use std::cell::RefCell;
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard};

/// Panic payload used to unwind model threads once a run is aborted.
/// Never user-visible: `explore` swallows it and reports the recorded
/// failure instead.
pub(crate) struct AbortPayload;

/// Why a blocked task cannot run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Block {
    /// Waiting to acquire a mutex or the write end of an rwlock.
    Lock(usize),
    /// Waiting to acquire the read end of an rwlock.
    Read(usize),
    /// Parked in `Condvar::wait` — not yet notified.
    CvWait { cv: usize, lock: usize },
    /// Waiting for another task to finish.
    Join(usize),
}

#[derive(Debug)]
enum TaskState {
    Runnable,
    Blocked(Block),
    Finished,
}

struct Task {
    state: TaskState,
    name: String,
}

/// Model-side state of one synchronisation object, re-registered fresh
/// for every schedule.
pub(crate) enum Object {
    Lock { held: bool },
    RwLock { readers: usize, writer: bool },
    Condvar,
    Atomic { value: u64 },
}

/// What kind of failure ended a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// No runnable thread while at least one is blocked — a deadlock or
    /// a lost wakeup.
    Deadlock,
    /// A model thread panicked (usually a failed invariant `assert!`).
    Panic,
    /// One schedule exceeded the configured step limit (livelock guard).
    StepLimit,
}

/// One recorded scheduling decision: which of `options` candidates was
/// chosen. Forced decisions (`options == 1`) are recorded too so replay
/// stays positional.
pub(crate) type Choice = (u32, u32); // (chosen, options)

/// The choice source of one run: a replayed prefix, then either
/// first-candidate (exhaustive DFS) or seeded-random selection.
pub(crate) struct Schedule {
    prefix: Vec<Choice>,
    pos: usize,
    trace: Vec<Choice>,
    /// `None` = exhaustive (pick 0 past the prefix); `Some` = random.
    rng: Option<Rng64>,
}

impl Schedule {
    pub(crate) fn new(prefix: Vec<Choice>, rng: Option<Rng64>) -> Schedule {
        Schedule {
            prefix,
            pos: 0,
            trace: Vec::new(),
            rng,
        }
    }

    fn choose(&mut self, options: usize) -> usize {
        debug_assert!(options >= 1);
        let chosen = if options == 1 {
            0
        } else if self.pos < self.prefix.len() {
            // Replay. The `min` only matters if the model is not
            // schedule-deterministic; see the explore docs.
            (self.prefix[self.pos].0 as usize).min(options - 1)
        } else {
            match &mut self.rng {
                None => 0,
                Some(rng) => (rng.next() % options as u64) as usize,
            }
        };
        self.trace.push((chosen as u32, options as u32));
        self.pos += 1;
        chosen
    }
}

/// xorshift64* — a tiny self-contained PRNG so the model checker stays
/// dependency-free (the vendored `rand` is for the solvers).
pub(crate) struct Rng64(u64);

impl Rng64 {
    pub(crate) fn new(seed: u64) -> Rng64 {
        Rng64(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

struct State {
    tasks: Vec<Task>,
    objects: Vec<Object>,
    /// Index of the task allowed to run; `usize::MAX` = nobody (all
    /// finished, or the machine is aborting).
    active: usize,
    live: usize,
    steps: u64,
    schedule: Schedule,
    failure: Option<(FailureKind, String)>,
    abort: bool,
}

/// One run's scheduler. Shared (`Arc`) between the driver and every
/// model thread; all state lives behind one OS mutex, which is exactly
/// what serialises the model threads.
pub(crate) struct Sched {
    mx: OsMutex<State>,
    cv: OsCondvar,
    max_steps: u64,
    max_tasks: usize,
    run_id: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler + task id of the calling thread, if it is a model
/// thread of a live run.
pub(crate) fn current() -> Option<(Arc<Sched>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(value: Option<(Arc<Sched>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = value);
}

static RUN_IDS: AtomicU64 = AtomicU64::new(1);

impl Sched {
    pub(crate) fn new(schedule: Schedule, max_steps: u64, max_tasks: usize) -> Sched {
        Sched {
            mx: OsMutex::new(State {
                tasks: vec![Task {
                    state: TaskState::Runnable,
                    name: "main".to_string(),
                }],
                objects: Vec::new(),
                active: 0,
                live: 1,
                steps: 0,
                schedule,
                failure: None,
                abort: false,
            }),
            cv: OsCondvar::new(),
            max_steps,
            max_tasks,
            // relaxed: a globally unique id is all that is needed; no
            // other memory is published under this counter.
            run_id: RUN_IDS.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Identifies this run for lazy per-run object registration.
    pub(crate) fn run_id(&self) -> u64 {
        self.run_id
    }

    fn state(&self) -> OsGuard<'_, State> {
        // The scheduler's own invariants never depend on poisoning (a
        // panicking model thread is handled via `abort`), so recover.
        match self.mx.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn wait_cv<'a>(&self, guard: OsGuard<'a, State>) -> OsGuard<'a, State> {
        match self.cv.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn fail(&self, st: &mut State, kind: FailureKind, message: String) {
        if st.failure.is_none() {
            st.failure = Some((kind, message));
        }
        st.abort = true;
        st.active = usize::MAX;
        self.cv.notify_all();
    }

    fn abort_bail(st: OsGuard<'_, State>) -> ! {
        drop(st);
        panic_any(AbortPayload);
    }

    fn runnable(st: &State) -> Vec<usize> {
        st.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.state, TaskState::Runnable))
            .map(|(i, _)| i)
            .collect()
    }

    fn render_tasks(st: &State) -> String {
        st.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let state = match &t.state {
                    TaskState::Runnable => "runnable".to_string(),
                    TaskState::Finished => "finished".to_string(),
                    TaskState::Blocked(Block::Lock(o)) => format!("blocked acquiring lock #{o}"),
                    TaskState::Blocked(Block::Read(o)) => {
                        format!("blocked acquiring read lock #{o}")
                    }
                    TaskState::Blocked(Block::CvWait { cv, lock }) => {
                        format!("waiting on condvar #{cv} (re-locks #{lock}) — never notified")
                    }
                    TaskState::Blocked(Block::Join(t)) => format!("joining thread #{t}"),
                };
                format!("  thread #{i} '{}': {state}", t.name)
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Picks the next task to run when the caller is *not* a candidate
    /// (it just blocked or finished). Detects deadlock: nobody runnable
    /// while somebody is still blocked.
    fn schedule_other(&self, st: &mut State) {
        let runnable = Self::runnable(st);
        if runnable.is_empty() {
            let blocked = st
                .tasks
                .iter()
                .any(|t| matches!(t.state, TaskState::Blocked(_)));
            if blocked {
                let detail = Self::render_tasks(st);
                self.fail(
                    st,
                    FailureKind::Deadlock,
                    format!("deadlock: no runnable thread\n{detail}"),
                );
            } else {
                // Everyone finished; wake the driver.
                st.active = usize::MAX;
                self.cv.notify_all();
            }
            return;
        }
        let pick = st.schedule.choose(runnable.len());
        st.active = runnable[pick];
        self.cv.notify_all();
    }

    /// One scheduling decision with the caller as a candidate: the
    /// preemption point placed before/after every model operation.
    fn step_choice<'a>(&self, mut st: OsGuard<'a, State>, me: usize) -> OsGuard<'a, State> {
        st.steps += 1;
        if st.steps > self.max_steps {
            self.fail(
                &mut st,
                FailureKind::StepLimit,
                format!(
                    "schedule exceeded {} operations — livelock or a model too large to explore",
                    self.max_steps
                ),
            );
            Self::abort_bail(st);
        }
        let runnable = Self::runnable(&st);
        let pick = st.schedule.choose(runnable.len());
        let next = runnable[pick];
        if next != me {
            st.active = next;
            self.cv.notify_all();
            st = self.wait_turn(st, me);
        }
        st
    }

    fn wait_turn<'a>(&self, mut st: OsGuard<'a, State>, me: usize) -> OsGuard<'a, State> {
        while st.active != me && !st.abort {
            st = self.wait_cv(st);
        }
        if st.abort {
            Self::abort_bail(st);
        }
        st
    }

    /// Entry preemption point of every model operation.
    pub(crate) fn op_step(&self, me: usize) {
        let st = self.state();
        if st.abort {
            Self::abort_bail(st);
        }
        let st = self.step_choice(st, me);
        drop(st);
    }

    /// Blocks the caller with reason `b`, hands the machine to another
    /// task, and returns once the caller is runnable *and* scheduled.
    fn block_on<'a>(&self, mut st: OsGuard<'a, State>, me: usize, b: Block) -> OsGuard<'a, State> {
        st.tasks[me].state = TaskState::Blocked(b);
        self.schedule_other(&mut st);
        if st.abort {
            Self::abort_bail(st);
        }
        while !(st.abort || st.active == me && matches!(st.tasks[me].state, TaskState::Runnable)) {
            st = self.wait_cv(st);
        }
        if st.abort {
            Self::abort_bail(st);
        }
        st
    }

    fn wake_blocked(st: &mut State, pred: impl Fn(Block) -> bool) {
        for task in &mut st.tasks {
            if let TaskState::Blocked(b) = task.state {
                if pred(b) {
                    task.state = TaskState::Runnable;
                }
            }
        }
    }

    // -- objects ------------------------------------------------------

    pub(crate) fn register_object(&self, object: Object) -> usize {
        let mut st = self.state();
        st.objects.push(object);
        st.objects.len() - 1
    }

    // -- mutex --------------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: usize, oid: usize) {
        self.op_step(me);
        let mut st = self.state();
        loop {
            if let Object::Lock { held } = &mut st.objects[oid] {
                if !*held {
                    *held = true;
                    return;
                }
            }
            st = self.block_on(st, me, Block::Lock(oid));
        }
    }

    pub(crate) fn mutex_unlock(&self, me: usize, oid: usize) {
        let unwinding = std::thread::panicking();
        let mut st = self.state();
        if let Object::Lock { held } = &mut st.objects[oid] {
            *held = false;
        }
        Self::wake_blocked(&mut st, |b| b == Block::Lock(oid));
        if unwinding || st.abort {
            // Best-effort release while this thread unwinds (or the run
            // aborts): no choice points, no further panics.
            self.cv.notify_all();
            return;
        }
        let st = self.step_choice(st, me);
        drop(st);
    }

    // -- rwlock -------------------------------------------------------

    pub(crate) fn rw_read_lock(&self, me: usize, oid: usize) {
        self.op_step(me);
        let mut st = self.state();
        loop {
            if let Object::RwLock { readers, writer } = &mut st.objects[oid] {
                if !*writer {
                    *readers += 1;
                    return;
                }
            }
            st = self.block_on(st, me, Block::Read(oid));
        }
    }

    pub(crate) fn rw_read_unlock(&self, me: usize, oid: usize) {
        let unwinding = std::thread::panicking();
        let mut st = self.state();
        if let Object::RwLock { readers, .. } = &mut st.objects[oid] {
            *readers = readers.saturating_sub(1);
        }
        Self::wake_blocked(&mut st, |b| b == Block::Lock(oid) || b == Block::Read(oid));
        if unwinding || st.abort {
            self.cv.notify_all();
            return;
        }
        let st = self.step_choice(st, me);
        drop(st);
    }

    pub(crate) fn rw_write_lock(&self, me: usize, oid: usize) {
        self.op_step(me);
        let mut st = self.state();
        loop {
            if let Object::RwLock { readers, writer } = &mut st.objects[oid] {
                if !*writer && *readers == 0 {
                    *writer = true;
                    return;
                }
            }
            st = self.block_on(st, me, Block::Lock(oid));
        }
    }

    pub(crate) fn rw_write_unlock(&self, me: usize, oid: usize) {
        let unwinding = std::thread::panicking();
        let mut st = self.state();
        if let Object::RwLock { writer, .. } = &mut st.objects[oid] {
            *writer = false;
        }
        Self::wake_blocked(&mut st, |b| b == Block::Lock(oid) || b == Block::Read(oid));
        if unwinding || st.abort {
            self.cv.notify_all();
            return;
        }
        let st = self.step_choice(st, me);
        drop(st);
    }

    // -- condvar ------------------------------------------------------

    /// Atomically releases `lockid` and parks on `cvid`; on wakeup
    /// (after a notify) re-acquires the lock before returning. No
    /// spurious wakeups: a parked task runs again only if notified —
    /// which is precisely what makes lost wakeups *detectable*.
    pub(crate) fn condvar_wait(&self, me: usize, cvid: usize, lockid: usize) {
        let mut st = self.state();
        if st.abort {
            Self::abort_bail(st);
        }
        if let Object::Lock { held } = &mut st.objects[lockid] {
            *held = false;
        }
        Self::wake_blocked(&mut st, |b| b == Block::Lock(lockid));
        st = self.block_on(
            st,
            me,
            Block::CvWait {
                cv: cvid,
                lock: lockid,
            },
        );
        // Notified and scheduled: re-acquire the lock.
        loop {
            if let Object::Lock { held } = &mut st.objects[lockid] {
                if !*held {
                    *held = true;
                    return;
                }
            }
            st = self.block_on(st, me, Block::Lock(lockid));
        }
    }

    /// `notify_one` picks **which** waiter wakes via a choice point —
    /// the scheduler explores every delivery order. `notify_all` wakes
    /// everyone. Notifies with no waiter are lost, as with a real
    /// condvar.
    pub(crate) fn condvar_notify(&self, me: usize, cvid: usize, all: bool) {
        let st = self.state();
        if st.abort {
            Self::abort_bail(st);
        }
        let mut st = st;
        let waiters: Vec<usize> = st
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.state, TaskState::Blocked(Block::CvWait { cv, .. }) if cv == cvid))
            .map(|(i, _)| i)
            .collect();
        if !waiters.is_empty() {
            if all {
                for w in waiters {
                    st.tasks[w].state = TaskState::Runnable;
                }
            } else {
                let pick = st.schedule.choose(waiters.len());
                st.tasks[waiters[pick]].state = TaskState::Runnable;
            }
        }
        let st = self.step_choice(st, me);
        drop(st);
    }

    // -- atomics ------------------------------------------------------

    /// Runs `f` on the atomic's cell as one indivisible step, with a
    /// preemption point before it. All model atomics are sequentially
    /// consistent: the checker explores interleavings, not weak-memory
    /// reorderings (see the crate docs for what that does and does not
    /// prove).
    pub(crate) fn atomic_op<R>(&self, me: usize, oid: usize, f: impl FnOnce(&mut u64) -> R) -> R {
        self.op_step(me);
        let mut st = self.state();
        match &mut st.objects[oid] {
            Object::Atomic { value } => f(value),
            _ => unreachable!("object #{oid} is not an atomic"),
        }
    }

    // -- threads ------------------------------------------------------

    pub(crate) fn register_task(&self, _me: usize, name: &str) -> usize {
        let mut st = self.state();
        if st.abort {
            Self::abort_bail(st);
        }
        if st.tasks.len() >= self.max_tasks {
            self.fail(
                &mut st,
                FailureKind::StepLimit,
                format!(
                    "model spawned more than {} threads — raise ExploreConfig::max_threads \
                     if intended",
                    self.max_tasks
                ),
            );
            Self::abort_bail(st);
        }
        st.tasks.push(Task {
            state: TaskState::Runnable,
            name: name.to_string(),
        });
        st.live += 1;
        // No choice point here: the child's OS thread does not exist
        // yet, so scheduling it now would hang the machine. The spawn
        // wrapper issues an `op_step` right after the OS spawn, which
        // is where "child runs before parent's next operation" gets
        // explored.
        st.tasks.len() - 1
    }

    /// Parks a fresh OS thread until the scheduler first picks its task.
    /// Returns false when the run aborted before that happened.
    pub(crate) fn wait_first_schedule(&self, me: usize) -> bool {
        let mut st = self.state();
        while st.active != me && !st.abort {
            st = self.wait_cv(st);
        }
        !st.abort
    }

    /// Marks `me` finished, records a failure if `payload` is a real
    /// panic, wakes joiners, and hands the machine on.
    pub(crate) fn task_finished(&self, me: usize, payload: Option<&(dyn Any + Send)>) {
        let mut st = self.state();
        if let Some(p) = payload {
            if !p.is::<AbortPayload>() {
                let message = panic_message(p);
                let name = st.tasks[me].name.clone();
                self.fail(
                    &mut st,
                    FailureKind::Panic,
                    format!("thread '{name}' panicked: {message}"),
                );
            }
        }
        st.tasks[me].state = TaskState::Finished;
        st.live -= 1;
        Self::wake_blocked(&mut st, |b| b == Block::Join(me));
        if st.abort {
            self.cv.notify_all();
            return;
        }
        self.schedule_other(&mut st);
    }

    pub(crate) fn join_task(&self, me: usize, target: usize) {
        self.op_step(me);
        let mut st = self.state();
        while !matches!(st.tasks[target].state, TaskState::Finished) {
            st = self.block_on(st, me, Block::Join(target));
        }
    }

    // -- driver -------------------------------------------------------

    /// Driver side: waits until every task (including any the model
    /// never joined) has finished, then reports the run's outcome.
    pub(crate) fn drive_to_completion(
        &self,
    ) -> Result<Vec<Choice>, (FailureKind, String, Vec<Choice>)> {
        let mut st = self.state();
        while st.live > 0 {
            st = self.wait_cv(st);
        }
        let trace = st.schedule.trace.clone();
        match st.failure.take() {
            Some((kind, message)) => Err((kind, message, trace)),
            None => Ok(trace),
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
