//! Exercises for the mbb-conc model checker itself: the scheduler must
//! find real bugs (deadlock, lost update, livelock) and must pass real
//! correct protocols under full enumeration. These tests drive the
//! model types directly (`model_sync` / `model_thread`), so they run
//! under plain `cargo test` in every build.

use std::sync::Arc;

use mbb_conc::model::{explore, try_explore, ExploreConfig, FailureKind, Strategy};
use mbb_conc::model_sync::atomic::{AtomicUsize, Ordering};
use mbb_conc::model_sync::{Condvar, Mutex, RwLock};
use mbb_conc::model_thread as thread;

#[test]
fn sequential_model_has_one_schedule() {
    let report = explore(ExploreConfig::exhaustive(), || {
        let m = Mutex::new(0u64);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    });
    assert!(report.exhausted);
    assert_eq!(report.schedules, 1);
}

#[test]
fn mutex_counter_is_correct_under_all_interleavings() {
    let report = explore(ExploreConfig::auto(2), || {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..2 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 4);
    });
    assert!(
        report.exhausted,
        "2-thread mutex model should enumerate fully"
    );
    assert!(
        report.schedules > 1,
        "at least two distinct interleavings must exist"
    );
}

/// The classic lost update: two threads doing load-then-store on an
/// atomic. The checker must find the interleaving where one increment
/// vanishes (the final assert fires → Panic failure).
#[test]
fn finds_lost_update_between_load_and_store() {
    let failure = try_explore(ExploreConfig::auto(2), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let seen = n.load(Ordering::Relaxed); // relaxed: model test
                    n.store(seen + 1, Ordering::Relaxed); // relaxed: model test
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update"); // relaxed: model test
    })
    .expect_err("the non-atomic increment race must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
}

/// Same protocol, but with the read-modify-write done atomically —
/// correct under every interleaving.
#[test]
fn fetch_add_increment_survives_enumeration() {
    let report = explore(ExploreConfig::auto(2), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed); // relaxed: model test
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2); // relaxed: model test
    });
    assert!(report.exhausted);
}

/// The decrement twin (used by the serve connection gauge): paired
/// fetch_add/fetch_sub must reconcile to the starting value under every
/// interleaving.
#[test]
fn fetch_sub_reconciles_against_fetch_add() {
    let report = explore(ExploreConfig::auto(2), || {
        let n = Arc::new(AtomicUsize::new(10));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    if i == 0 {
                        n.fetch_add(3, Ordering::Relaxed); // relaxed: model test
                    } else {
                        n.fetch_sub(3, Ordering::Relaxed); // relaxed: model test
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 10); // relaxed: model test
    });
    assert!(report.exhausted);
}

/// ABBA lock ordering: the checker must produce a Deadlock failure
/// naming both blocked threads.
#[test]
fn finds_abba_deadlock() {
    let failure = try_explore(ExploreConfig::auto(2), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = thread::spawn(move || {
            let _gb = b3.lock();
            let _ga = a3.lock();
        });
        t1.join().unwrap();
        t2.join().unwrap();
    })
    .expect_err("ABBA ordering must deadlock in some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("blocked acquiring lock"),
        "{}",
        failure.message
    );
}

/// Consistent lock ordering never deadlocks — full enumeration stays
/// green.
#[test]
fn ordered_locks_never_deadlock() {
    let report = explore(ExploreConfig::auto(2), || {
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let mut ga = a.lock();
                    let mut gb = b.lock();
                    *ga += 1;
                    *gb += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*a.lock(), 2);
        assert_eq!(*b.lock(), 2);
    });
    assert!(report.exhausted);
}

/// Producer/consumer over a condvar, written correctly (wait under the
/// checked lock): no schedule loses the wakeup.
#[test]
fn correct_condvar_handoff_is_clean() {
    let report = explore(ExploreConfig::auto(2), || {
        let slot = Arc::new(Mutex::new(None::<u64>));
        let ready = Arc::new(Condvar::new());
        let (slot2, ready2) = (Arc::clone(&slot), Arc::clone(&ready));
        let consumer = thread::spawn(move || {
            let mut guard = slot2.lock();
            while guard.is_none() {
                guard = ready2.wait(guard);
            }
            guard.take().unwrap()
        });
        let producer = thread::spawn(move || {
            *slot.lock() = Some(42);
            ready.notify_one();
        });
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), 42);
    });
    assert!(report.exhausted);
    assert!(report.schedules > 1);
}

/// RwLock: writers are exclusive, so two read-modify-write sections
/// under the write lock never lose an update.
#[test]
fn rwlock_writers_are_exclusive() {
    let report = explore(ExploreConfig::auto(2), || {
        let shared = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    let before = *shared.read();
                    let mut w = shared.write();
                    // The read above may be stale (lock released in
                    // between) but the write section itself is atomic.
                    *w += 1;
                    drop(w);
                    before
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*shared.read(), 2);
    });
    assert!(report.exhausted);
}

/// A model that never stops making progress must trip the step budget,
/// not hang the test suite.
#[test]
fn livelock_trips_step_limit() {
    let mut config = ExploreConfig::exhaustive();
    config.max_steps = 200;
    config.max_schedules = 1;
    let failure = try_explore(config, || {
        let n = AtomicUsize::new(0);
        loop {
            if n.fetch_add(1, Ordering::Relaxed) > 1_000_000 {
                // relaxed: model test
                break;
            }
        }
    })
    .expect_err("unbounded spinning must hit the step limit");
    assert_eq!(failure.kind, FailureKind::StepLimit);
}

/// Random sampling: reproducible, and distinct-trace counting sees many
/// different schedules on a 4-thread model.
#[test]
fn random_strategy_counts_distinct_schedules() {
    let config = ExploreConfig {
        max_schedules: 300,
        max_steps: 20_000,
        strategy: Strategy::Random { seed: 7 },
        max_threads: 16,
    };
    let run = || {
        try_explore(config, || {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || *counter.lock() += 1)
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*counter.lock(), 4);
        })
        .expect("correct model must pass")
    };
    let first = run();
    let second = run();
    assert!(
        first.distinct_schedules > 10,
        "4 threads × 300 samples should hit many interleavings, got {}",
        first.distinct_schedules
    );
    assert_eq!(
        first.distinct_schedules, second.distinct_schedules,
        "same seed must reproduce the same exploration"
    );
    assert!(!first.exhausted);
}

/// `auto` implements the ≤3-threads-exhaustive / else-random policy.
#[test]
fn auto_policy_switches_strategy() {
    assert!(matches!(
        ExploreConfig::auto(3).strategy,
        Strategy::Exhaustive
    ));
    assert!(matches!(
        ExploreConfig::auto(4).strategy,
        Strategy::Random { .. }
    ));
}

/// Panics inside a spawned model thread surface as Panic failures with
/// the thread's name and message.
#[test]
fn child_panic_is_reported() {
    let failure = try_explore(ExploreConfig::exhaustive(), || {
        let h = thread::spawn(|| panic!("invariant broken in child"));
        h.join().unwrap();
    })
    .expect_err("child panic must fail the run");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("invariant broken in child"),
        "{}",
        failure.message
    );
}
