//! The checker-proves-itself regression mandated by ISSUE 7: plant a
//! real lost-wakeup bug in a test-local copy of the admission queue's
//! pop path and assert the model checker finds it within the schedule
//! budget — then check the corrected version (the shape the real
//! `Admission` in `crates/serve/src/stream.rs` uses) passes full
//! enumeration.
//!
//! The planted bug is the classic check-then-wait gap: `pop` observes
//! the queue empty, **releases the lock**, then re-locks and parks on
//! the condvar. A push that lands in the gap issues its `notify_one`
//! while no one is waiting — the notify is lost, the consumer parks
//! forever, and the run deadlocks with the consumer named in the
//! diagnostic. The real queue waits on the same guard it checked under,
//! which closes the gap (the condvar releases the lock and parks
//! atomically).

use std::collections::VecDeque;
use std::sync::Arc;

use mbb_conc::model::{explore, try_explore, ExploreConfig, FailureKind};
use mbb_conc::model_sync::{Condvar, Mutex};
use mbb_conc::model_thread as thread;

struct QueueState {
    items: VecDeque<u64>,
    closed: bool,
}

/// Test-local copy of the admission queue's blocking core, with a
/// switch selecting the planted-bug pop path or the correct one.
struct MiniAdmission {
    state: Mutex<QueueState>,
    work: Condvar,
    buggy: bool,
}

impl MiniAdmission {
    fn new(buggy: bool) -> MiniAdmission {
        MiniAdmission {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
            buggy,
        }
    }

    fn push(&self, value: u64) {
        self.state.lock().items.push_back(value);
        self.work.notify_one();
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.work.notify_all();
    }

    fn pop(&self) -> Option<u64> {
        if self.buggy {
            loop {
                {
                    let mut st = self.state.lock();
                    if let Some(v) = st.items.pop_front() {
                        return Some(v);
                    }
                    if st.closed {
                        return None;
                    }
                    // PLANTED BUG: the guard drops here, opening a gap
                    // between the emptiness check and the wait below.
                }
                let st = self.state.lock();
                let _reacquired = self.work.wait(st);
            }
        } else {
            // The real Admission::pop shape: re-check under the same
            // guard the condvar releases, so no notify can be lost.
            let mut st = self.state.lock();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Some(v);
                }
                if st.closed {
                    return None;
                }
                st = self.work.wait(st);
            }
        }
    }
}

/// One producer pushing one item, one consumer popping it: with the
/// check-then-wait gap, some interleaving loses the producer's notify
/// and the consumer parks forever. The checker must find that schedule
/// well inside the 1000-schedule budget and name the parked condvar
/// waiter in the diagnostic.
#[test]
fn checker_finds_planted_lost_wakeup() {
    let mut config = ExploreConfig::exhaustive();
    config.max_schedules = 1000;
    let failure = try_explore(config, || {
        let q = Arc::new(MiniAdmission::new(true));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(7))
        };
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    })
    .expect_err("the planted check-then-wait gap must deadlock in some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("waiting on condvar"),
        "diagnostic should name the parked waiter:\n{}",
        failure.message
    );
    assert!(
        failure.schedules <= 1000,
        "must be found within the schedule budget, took {}",
        failure.schedules
    );
}

/// The corrected pop path — the shape the real queue uses — survives
/// full enumeration of the same producer/consumer model.
#[test]
fn fixed_queue_passes_exhaustive_enumeration() {
    let report = explore(ExploreConfig::auto(2), || {
        let q = Arc::new(MiniAdmission::new(false));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(7))
        };
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
    });
    assert!(report.exhausted, "2-thread handoff must enumerate fully");
}

/// Close wakes all parked consumers (notify_all) — no explored schedule
/// leaves a consumer parked after close. The 3-thread space is larger
/// than is worth enumerating in tier-1, so this bounds the DFS and
/// asserts breadth instead of exhaustion.
#[test]
fn close_drains_parked_consumers() {
    let mut config = ExploreConfig::auto(3);
    config.max_schedules = 10_000;
    let report = explore(config, || {
        let q = Arc::new(MiniAdmission::new(false));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        let closer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.close())
        };
        closer.join().unwrap();
        for consumer in consumers {
            assert_eq!(
                consumer.join().unwrap(),
                None,
                "parked consumer missed close"
            );
        }
    });
    assert!(
        report.distinct_schedules >= 1000,
        "close model should cover >=1000 schedules, got {}",
        report.distinct_schedules
    );
}
