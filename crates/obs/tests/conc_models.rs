//! Model-check suite for [`mbb_obs::SpanRing`] — the lock-free SPSC
//! ring carrying span records from instrumented threads to the
//! collector. Compiled (and run) only under the model facade:
//!
//! ```text
//! RUSTFLAGS="--cfg mbb_conc" cargo test -p mbb-obs --test conc_models
//! ```
//!
//! In a normal build this file compiles to an empty test binary, so
//! tier-1 `cargo test` is unaffected.
//!
//! What is certified, across ≥1000 distinct schedules per test:
//!
//! * **No lost or duplicated records.** Every record a producer
//!   successfully pushes is drained exactly once, content-intact and in
//!   push order, regardless of how the drain interleaves with the
//!   pushes.
//! * **The dropped counter reconciles exactly.** For each ring,
//!   `drained + dropped == attempted` — a full ring rejects, it never
//!   silently loses.
//!
//! The consumer threads mirror the production collector protocol
//! (`TraceFileWorker` in the CLI, `obs::drain` in the facade): sweep
//! concurrently, observe a done flag, sweep once more. The done flag is
//! a `std` atomic — invisible to the model scheduler, which is safe
//! because it is only ever read after the ring's own model-visible
//! Acquire/Release edges, and correctness never depends on *when* the
//! flag flips (only liveness does, and the consumer's sweep count is
//! bounded either way).
#![cfg(mbb_conc)]

use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
use std::sync::Arc;

use mbb_conc::model::{explore, ExploreConfig, Strategy};
use mbb_conc::thread;
use mbb_obs::{SpanRecord, SpanRing};

fn rec(thread: u32, seq: u64) -> SpanRecord {
    SpanRecord {
        seq,
        stage: (seq % 14) as u16,
        thread,
        request: seq * 10 + 1,
        conn: thread as u64,
        start_nanos: seq * 1_000,
        duration_nanos: 42 + seq,
    }
}

/// Sampling config for traces too long to enumerate exhaustively (every
/// atomic load/store in push/drain is a scheduling choice point). 1500
/// seeded-random schedules; callers assert ≥1000 came out distinct.
fn sampled(seed: u64) -> ExploreConfig {
    ExploreConfig {
        max_schedules: 1500,
        max_steps: 20_000,
        strategy: Strategy::Random { seed },
        max_threads: 8,
    }
}

#[track_caller]
fn assert_broad(report: &mbb_conc::model::ExploreReport) {
    assert!(
        report.distinct_schedules >= 1000,
        "want >=1000 distinct schedules, got {} of {}",
        report.distinct_schedules,
        report.schedules
    );
}

/// The headline SPSC invariant: one producer racing one concurrent
/// consumer on a ring big enough that nothing ever drops. In every
/// schedule the consumer sees exactly the pushed records, in order,
/// content-intact — no loss, no duplication, no torn reads.
#[test]
fn spsc_drains_every_record_exactly_once() {
    let report = explore(sampled(0x72_69_6e_67), || {
        let ring = Arc::new(SpanRing::with_capacity(8));
        let done = Arc::new(AtomicBool::new(false));
        let producer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                for seq in 0..3 {
                    assert!(ring.push(&rec(1, seq)), "capacity 8 never fills");
                }
                done.store(true, StdOrdering::Release);
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut seen = Vec::new();
                // Collector protocol: read the flag *before* sweeping,
                // so the final sweep catches everything published
                // before the flag flipped.
                loop {
                    let stopping = done.load(StdOrdering::Acquire);
                    ring.drain(&mut |r| seen.push(r));
                    if stopping {
                        break;
                    }
                }
                seen
            })
        };
        producer.join().unwrap();
        let mut seen = consumer.join().unwrap();
        ring.drain(&mut |r| seen.push(r));
        assert_eq!(
            seen,
            (0..3).map(|seq| rec(1, seq)).collect::<Vec<_>>(),
            "drained records must be exactly the pushed ones, in order"
        );
        assert_eq!(ring.dropped(), 0);
        assert!(ring.is_empty());
    });
    assert_broad(&report);
}

/// Overflow reconciliation: a capacity-2 ring, four pushes racing a
/// concurrent drain. Depending on the schedule anywhere from zero to
/// two pushes drop — but in **every** schedule
/// `drained + dropped == attempted`, the drained sequence is a strictly
/// increasing prefix-free subsequence of the pushed one, and each
/// drained record is content-intact.
#[test]
fn dropped_counter_reconciles_exactly_under_races() {
    let report = explore(sampled(0x64_72_6f_70), || {
        let ring = Arc::new(SpanRing::with_capacity(2));
        let done = Arc::new(AtomicBool::new(false));
        let producer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut pushed = 0u64;
                for seq in 0..4 {
                    if ring.push(&rec(1, seq)) {
                        pushed += 1;
                    }
                }
                done.store(true, StdOrdering::Release);
                pushed
            })
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    let stopping = done.load(StdOrdering::Acquire);
                    ring.drain(&mut |r| seen.push(r));
                    if stopping {
                        break;
                    }
                }
                seen
            })
        };
        let pushed = producer.join().unwrap();
        let mut seen = consumer.join().unwrap();
        ring.drain(&mut |r| seen.push(r));

        assert_eq!(
            seen.len() as u64,
            pushed,
            "every accepted push is drained exactly once"
        );
        assert_eq!(
            pushed + ring.dropped(),
            4,
            "accepted + dropped reconciles with the attempt count"
        );
        // In order, no duplicates, content intact.
        assert!(seen.windows(2).all(|w| w[0].seq < w[1].seq), "{seen:?}");
        for r in &seen {
            assert_eq!(*r, rec(1, r.seq), "torn or corrupted record: {r:?}");
        }
        assert!(ring.is_empty(), "final sweep leaves nothing behind");
    });
    assert_broad(&report);
}

/// The full collector shape: two producer threads, each with its own
/// ring (the facade's per-thread layout), one collector sweeping both
/// concurrently. Nothing is lost, nothing crosses rings, per-ring order
/// holds, and the global reconciliation `Σ drained + Σ dropped ==
/// Σ attempted` closes exactly.
#[test]
fn multi_ring_collector_loses_nothing() {
    let report = explore(sampled(0x63_6f_6c_6c), || {
        let rings: Arc<[SpanRing; 2]> =
            Arc::new([SpanRing::with_capacity(2), SpanRing::with_capacity(2)]);
        let done = Arc::new(AtomicBool::new(false));
        let producers: Vec<_> = (0u32..2)
            .map(|t| {
                let rings = Arc::clone(&rings);
                thread::spawn(move || {
                    let mut pushed = 0u64;
                    for seq in 0..2 {
                        if rings[t as usize].push(&rec(t + 1, seq)) {
                            pushed += 1;
                        }
                    }
                    pushed
                })
            })
            .collect();
        let collector = {
            let rings = Arc::clone(&rings);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    let stopping = done.load(StdOrdering::Acquire);
                    for ring in rings.iter() {
                        ring.drain(&mut |r| seen.push(r));
                    }
                    if stopping {
                        break;
                    }
                }
                seen
            })
        };
        let pushed: u64 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        done.store(true, StdOrdering::Release);
        let mut seen = collector.join().unwrap();
        for ring in rings.iter() {
            ring.drain(&mut |r| seen.push(r));
        }

        let dropped: u64 = rings.iter().map(|r| r.dropped()).sum();
        assert_eq!(seen.len() as u64, pushed, "no loss, no duplication");
        assert_eq!(pushed + dropped, 4, "global reconciliation closes");
        for t in 1u32..=2 {
            let per_ring: Vec<u64> = seen
                .iter()
                .filter(|r| r.thread == t)
                .map(|r| r.seq)
                .collect();
            assert!(
                per_ring.windows(2).all(|w| w[0] < w[1]),
                "ring {t} order violated: {per_ring:?}"
            );
        }
        for r in &seen {
            assert_eq!(*r, rec(r.thread, r.seq), "record crossed rings: {r:?}");
        }
    });
    assert_broad(&report);
}

/// Bounded-exhaustive DFS over the minimal race — one push, one
/// concurrent drain sweep — as a systematic complement to the random
/// sampling above: each schedule distinct by construction.
#[test]
fn single_record_handoff_survives_bounded_dfs() {
    let report = explore(ExploreConfig::exhaustive(), || {
        let ring = Arc::new(SpanRing::with_capacity(2));
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || assert!(ring.push(&rec(1, 0))))
        };
        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let mut seen = Vec::new();
                ring.drain(&mut |r| seen.push(r));
                seen
            })
        };
        producer.join().unwrap();
        let mut seen = consumer.join().unwrap();
        ring.drain(&mut |r| seen.push(r));
        // The concurrent sweep either caught the record or the final
        // one did — exactly once, intact, either way.
        assert_eq!(seen, vec![rec(1, 0)]);
        assert_eq!(ring.dropped(), 0);
    });
    assert!(
        report.distinct_schedules >= 2,
        "DFS must explore both sides of the publish race: {} schedules",
        report.distinct_schedules
    );
}
