//! The span facade: global enable flag, per-thread ring registration,
//! RAII guards, and the collector drain.
//!
//! Clock discipline: a [`SpanGuard`] takes exactly one
//! `Instant::now()` pair — one at construction, one at drop. The
//! [`record`]/[`record_for`] entry points take *zero* clock reads: they
//! re-use `Instant`s the caller already holds (queue-wait spans are
//! built from the admission timestamps the serve loop measures anyway).
//! With the `obs-off` feature every entry point compiles to a no-op
//! with no clock reads at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

#[cfg(not(feature = "obs-off"))]
use std::cell::{Cell, RefCell};
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU32, AtomicU64};
#[cfg(not(feature = "obs-off"))]
use std::sync::{Arc, Mutex, OnceLock};

use crate::ring::SpanRecord;
#[cfg(not(feature = "obs-off"))]
use crate::ring::SpanRing;
use crate::Stage;

/// Per-thread ring capacity (records). 4096 × 48 B = 192 KiB per
/// instrumented thread, drained every few milliseconds by a trace
/// collector; overflow drops (counted) rather than blocks.
#[cfg_attr(feature = "obs-off", allow(dead_code))]
pub const RING_CAPACITY: usize = 4096;

// The runtime switch lives outside the collector so the disabled fast
// path is a single relaxed load with no lazy-init branch. Std atomics
// on purpose: this flag must be readable outside `model::explore` even
// under `--cfg mbb_conc` builds (the facade stays disabled there).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span recording on (no-op under `obs-off`).
pub fn enable() {
    #[cfg(not(feature = "obs-off"))]
    {
        collector(); // pin the epoch no later than the first span
                     // relaxed: independent flag; recording threads observe it
                     // eventually, which is all a sampling switch needs.
        ENABLED.store(true, Ordering::Relaxed);
    }
}

/// Turns span recording off.
pub fn disable() {
    // relaxed: see `enable`.
    ENABLED.store(false, Ordering::Relaxed);
}

/// True when spans are being recorded.
pub fn is_enabled() -> bool {
    // relaxed: see `enable`.
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Collector (compiled out under obs-off).

#[cfg(not(feature = "obs-off"))]
struct Collector {
    /// Every thread's ring, in registration order. Rings are never
    /// removed: a dead thread's undrained records still drain.
    rings: Mutex<Vec<Arc<SpanRing>>>,
    /// All `start_nanos` are relative to this.
    epoch: Instant,
    /// Global sequence stamp allocator.
    seq: AtomicU64,
    /// Thread id allocator.
    threads: AtomicU32,
}

#[cfg(not(feature = "obs-off"))]
fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        rings: Mutex::new(Vec::new()),
        epoch: Instant::now(),
        seq: AtomicU64::new(0),
        threads: AtomicU32::new(0),
    })
}

#[cfg(not(feature = "obs-off"))]
thread_local! {
    /// This thread's (id, ring), registered on first use.
    static LOCAL: RefCell<Option<(u32, Arc<SpanRing>)>> = const { RefCell::new(None) };
    /// The (request, conn) ids spans on this thread inherit.
    static CONTEXT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

#[cfg(not(feature = "obs-off"))]
fn emit(stage: Stage, start: Instant, end: Instant, request: u64, conn: u64) {
    let collector = collector();
    let start_nanos = u64::try_from(start.saturating_duration_since(collector.epoch).as_nanos())
        .unwrap_or(u64::MAX);
    let duration_nanos =
        u64::try_from(end.saturating_duration_since(start).as_nanos()).unwrap_or(u64::MAX);
    let record = SpanRecord {
        // relaxed: the stamp only needs to be unique and roughly
        // allocation-ordered; readers sort drained records by time.
        seq: collector.seq.fetch_add(1, Ordering::Relaxed),
        stage: stage as u16,
        thread: 0, // filled below from the thread registration
        request,
        conn,
        start_nanos,
        duration_nanos,
    };
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let (thread, ring) = local.get_or_insert_with(|| {
            // relaxed: unique-id allocation, no ordering dependency.
            let id = collector.threads.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(SpanRing::with_capacity(RING_CAPACITY));
            collector.rings.lock().unwrap().push(Arc::clone(&ring));
            (id, ring)
        });
        ring.push(&SpanRecord {
            thread: *thread,
            ..record
        });
    });
}

// ---------------------------------------------------------------------
// Public facade.

/// Sets this thread's span context (request id, connection id) until
/// the returned guard drops; spans opened meanwhile inherit the ids.
/// Nests: the guard restores the previous context.
pub fn context(request: u64, conn: u64) -> ContextGuard {
    #[cfg(not(feature = "obs-off"))]
    {
        let previous = CONTEXT.with(|c| c.replace((request, conn)));
        ContextGuard { previous }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = (request, conn);
        ContextGuard {}
    }
}

/// Restores the previous span context on drop. See [`context`].
#[must_use = "the context lasts until the guard drops"]
#[derive(Debug)]
pub struct ContextGuard {
    #[cfg(not(feature = "obs-off"))]
    previous: (u64, u64),
}

#[cfg(not(feature = "obs-off"))]
impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.previous));
    }
}

/// Opens a span for `stage` with the thread's current [`context`] ids;
/// the span closes (and its record is pushed) when the guard drops.
/// One `Instant::now()` here, one at drop; nothing at all when
/// recording is disabled or `obs-off` is compiled in.
#[inline]
pub fn span(stage: Stage) -> SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    {
        if !is_enabled() {
            return SpanGuard { armed: None };
        }
        let (request, conn) = CONTEXT.with(Cell::get);
        SpanGuard {
            armed: Some((stage, Instant::now(), request, conn)),
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = stage;
        SpanGuard {}
    }
}

/// [`span`] with explicit request/conn ids (overrides the context).
#[inline]
pub fn span_for(stage: Stage, request: u64, conn: u64) -> SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    {
        if !is_enabled() {
            return SpanGuard { armed: None };
        }
        SpanGuard {
            armed: Some((stage, Instant::now(), request, conn)),
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = (stage, request, conn);
        SpanGuard {}
    }
}

/// An open span; pushes its record when dropped.
#[must_use = "the span closes when the guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    armed: Option<(Stage, Instant, u64, u64)>,
}

#[cfg(not(feature = "obs-off"))]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((stage, start, request, conn)) = self.armed.take() {
            emit(stage, start, Instant::now(), request, conn);
        }
    }
}

/// Records a span from `Instant`s the caller already measured — zero
/// clock reads (cross-thread spans like queue wait are built from the
/// timestamps the serve loop takes anyway). Uses the thread context's
/// (request, conn).
#[inline]
pub fn record(stage: Stage, start: Instant, end: Instant) {
    #[cfg(not(feature = "obs-off"))]
    {
        if is_enabled() {
            let (request, conn) = CONTEXT.with(Cell::get);
            emit(stage, start, end, request, conn);
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = (stage, start, end);
    }
}

/// [`record`] with explicit request/conn ids.
#[inline]
pub fn record_for(stage: Stage, start: Instant, end: Instant, request: u64, conn: u64) {
    #[cfg(not(feature = "obs-off"))]
    {
        if is_enabled() {
            emit(stage, start, end, request, conn);
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = (stage, start, end, request, conn);
    }
}

/// Drains every thread's ring into `f` (collector side; call from one
/// thread at a time). Records from one thread arrive in push order;
/// across threads, interleave by ring — sort by `start_nanos` or `seq`
/// if a global timeline is needed.
pub fn drain(mut f: impl FnMut(SpanRecord)) {
    #[cfg(not(feature = "obs-off"))]
    {
        let rings: Vec<Arc<SpanRing>> = collector().rings.lock().unwrap().clone();
        for ring in rings {
            ring.drain(&mut f);
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = &mut f;
    }
}

/// Total records dropped on full rings since process start.
pub fn dropped_records() -> u64 {
    #[cfg(not(feature = "obs-off"))]
    {
        collector()
            .rings
            .lock()
            .unwrap()
            .iter()
            .map(|ring| ring.dropped())
            .sum()
    }
    #[cfg(feature = "obs-off")]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The facade is process-global; tests that enable/drain serialize
    // on this so they cannot steal each other's records.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn disabled_spans_record_nothing() {
        let _gate = lock();
        disable();
        drain(|_| {}); // flush leftovers from other tests
        {
            let _span = span(Stage::Execute);
        }
        let mut n = 0;
        drain(|_| n += 1);
        assert_eq!(n, 0);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn spans_inherit_context_and_nest() {
        let _gate = lock();
        enable();
        drain(|_| {});
        {
            let _ctx = context(77, 9);
            let _outer = span(Stage::Execute);
            {
                let _inner_ctx = context(78, 9);
                let _inner = span(Stage::SolveVerify);
            }
            // Restored after the inner guard dropped.
            let _tail = span(Stage::Encode);
        }
        disable();
        let mut got = Vec::new();
        drain(|r| got.push((r.stage, r.request, r.conn)));
        got.sort_unstable();
        assert_eq!(
            got,
            vec![
                (Stage::SolveVerify as u16, 78, 9),
                (Stage::Execute as u16, 77, 9),
                (Stage::Encode as u16, 77, 9),
            ]
        );
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn record_uses_caller_instants() {
        let _gate = lock();
        enable();
        drain(|_| {});
        let start = Instant::now();
        let end = start + std::time::Duration::from_millis(5);
        record_for(Stage::QueueWait, start, end, 5, 2);
        disable();
        let mut got = Vec::new();
        drain(|r| got.push(r));
        let r = got
            .iter()
            .find(|r| r.stage == Stage::QueueWait as u16)
            .expect("queue-wait record");
        assert_eq!(r.duration_nanos, 5_000_000);
        assert_eq!((r.request, r.conn), (5, 2));
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_compiles_everything_to_noops() {
        let _gate = lock();
        enable();
        assert!(!is_enabled(), "enable() must be inert under obs-off");
        let _ctx = context(1, 2);
        let _span = span(Stage::Execute);
        record_for(Stage::QueueWait, Instant::now(), Instant::now(), 1, 2);
        let mut n = 0;
        drain(|_| n += 1);
        assert_eq!(n, 0);
        assert_eq!(dropped_records(), 0);
    }
}
