//! Metric primitives: monotone counters, gauges, and HDR-style
//! log-bucketed latency histograms.
//!
//! The histogram layout is base-2 octaves split into `2^SUB_BITS = 16`
//! linear sub-buckets: values below 16 get exact buckets, every larger
//! value lands in a bucket whose width is `2^(octave-4)`, so the
//! relative quantile error is at most `1/16 = 6.25 %`. All recording is
//! wait-free relaxed atomics — histograms are safe to hammer from many
//! threads and to snapshot concurrently (a snapshot is a consistent
//! *approximation* while writers are live, exact at quiescence).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Linear sub-bucket resolution: each base-2 octave splits into
/// `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the whole `u64` value domain.
pub const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB as usize + SUB as usize;

/// The bucket a value lands in.
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros(); // >= SUB_BITS
        let m = ((value >> (exp - SUB_BITS)) - SUB) as usize;
        SUB as usize * (exp - SUB_BITS) as usize + SUB as usize + m
    }
}

/// Inclusive lower bound of bucket `index`.
fn bucket_lower(index: usize) -> u64 {
    let idx = index as u64;
    if idx < SUB {
        idx
    } else {
        let octave = idx / SUB - 1 + SUB_BITS as u64;
        let m = idx % SUB;
        (SUB + m) << (octave - SUB_BITS as u64)
    }
}

/// Exclusive upper bound of bucket `index` (`u64::MAX` for the last).
fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1)
    }
}

// ---------------------------------------------------------------------
// Counter / gauge.

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // relaxed: independent monotone event count; no other memory is
        // published through it and readers only need an eventual total.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        // relaxed: see `add` — a point-in-time read of a counter.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed level that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the level.
    pub fn set(&self, value: i64) {
        // relaxed: last-writer-wins level; no ordering dependency.
        self.0.store(value, Ordering::Relaxed);
    }

    /// Moves the level by `delta`.
    pub fn add(&self, delta: i64) {
        // relaxed: independent level adjustment, same as `Counter::add`.
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        // relaxed: point-in-time read.
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Histogram.

/// A log-bucketed latency histogram (values are `u64`, by convention
/// nanoseconds). Recording is wait-free; snapshots may run concurrently.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        // relaxed: each bucket/sum/max cell is an independent monotone
        // accumulator; nothing is published through them and snapshots
        // tolerate torn cross-cell reads (documented approximation).
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the bucket counts. While writers are
    /// live the cells may be mutually slightly stale; `count` is
    /// derived from the copied buckets so quantiles are internally
    /// consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            // relaxed: see `record`.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            count,
            // relaxed: see `record`.
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state with quantile
/// readout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded values (sum of `buckets`).
    pub count: u64,
    /// Sum of recorded values (mean = `sum / count`).
    pub sum: u64,
    /// Largest recorded value, exact.
    pub max: u64,
    /// Per-bucket counts (`BUCKETS` entries).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot of an empty histogram.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// The mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: an upper bound of the bucket
    /// holding the `ceil(q·count)`-th value, clamped to the exact
    /// recorded `max`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Highest value representable by the bucket (the last
                // bucket's upper bound is itself inclusive), clamped to
                // the exact recorded max.
                let bound = if i + 1 >= BUCKETS {
                    u64::MAX
                } else {
                    bucket_upper(i) - 1
                };
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds another snapshot's population into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_sub_and_tight_above() {
        // Exact buckets for small values.
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
        // Every bucket's lower bound maps back to that bucket, and
        // buckets tile the domain: upper(i) == lower(i+1).
        for i in 0..BUCKETS {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_upper(i), bucket_lower(i + 1));
                assert_eq!(bucket_index(bucket_upper(i) - 1), i, "last value of {i}");
            }
        }
        // Octave edges land on fresh buckets.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17u64, 100, 1_000, 123_456, u32::MAX as u64, 1 << 60] {
            let i = bucket_index(v);
            let width = bucket_upper(i) - bucket_lower(i);
            assert!(
                (width as f64) <= (bucket_lower(i) as f64) / (SUB as f64 - 1.0) + 1.0,
                "bucket {i} too wide for {v}: width {width}"
            );
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_max() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let qs: Vec<u64> = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.quantile(1.0), s.max);
        // p50 within one sub-bucket (6.25 %) of the true median.
        let p50 = s.p50() as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.0725, "{p50}");
    }

    #[test]
    fn saturation_at_u64_max_is_safe() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record_duration(std::time::Duration::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[BUCKETS - 1], 3);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn merge_is_population_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v + 1000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 200);
        assert_eq!(m.sum, (0..100).sum::<u64>() + (1000..1100).sum::<u64>());
        assert_eq!(m.max, 1099);
        // The merged median sits between the two populations.
        assert!(m.p50() >= 99 && m.p50() <= 1008, "{}", m.p50());
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }
}
