//! The span transport: a lock-free single-producer/single-consumer
//! ring of fixed-size records, one ring per instrumented thread.
//!
//! # Contract
//!
//! Each [`SpanRing`] has exactly **one producer** (the thread that owns
//! it — the facade hands every thread its own ring) and **one
//! consumer** (the collector draining all rings). Within that contract
//! the ring is wait-free on both sides: a full ring makes
//! [`SpanRing::push`] count a drop and return, it never blocks the hot
//! path.
//!
//! # Ordering argument
//!
//! `head` is the producer's publication cursor, `tail` the consumer's.
//! Both are monotone `u64` counters (slot = counter mod capacity).
//!
//! * **Producer:** reads `tail` with `Acquire` (so the consumer's
//!   `Release` store of `tail` — which happens *after* its reads of the
//!   freed slots — is visible before the producer overwrites those
//!   slots), writes the record words `Relaxed`, then publishes with a
//!   `Release` store of `head`.
//! * **Consumer:** reads `head` with `Acquire` (pairing with the
//!   producer's `Release`, so all word writes of published records
//!   happen-before the reads), reads the words `Relaxed`, then frees
//!   the slots with a `Release` store of `tail`.
//!
//! A slot is only rewritten when `head - tail < capacity`, i.e. after
//! the consumer has published consumption of it; a slot is only read
//! when `tail < head`, i.e. after the producer published it — so every
//! `Relaxed` word access is ordered by one of the two Release/Acquire
//! edges above. The `conc_models` tests (`crates/obs/tests/`) model-
//! check exactly this protocol: no lost or duplicated records, and the
//! dropped counter reconciling exactly, across ≥1000 schedules.
//!
//! The atomics come from the `mbb-conc` facade: `std` in normal
//! builds, the model scheduler under `--cfg mbb_conc` (where they only
//! work inside `model::explore` closures — which is fine, because the
//! facade keeps spans disabled in those test binaries).

use mbb_conc::sync::atomic::{AtomicU64, Ordering};

/// `u64` words per packed [`SpanRecord`].
pub const RECORD_WORDS: usize = 6;

/// One completed span, as stored in the ring: fixed-size, `Copy`, no
/// heap. Times are nanoseconds relative to the collector's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global sequence stamp (allocation order across all threads).
    pub seq: u64,
    /// [`Stage`](crate::Stage) discriminant.
    pub stage: u16,
    /// Recording thread's obs-assigned id.
    pub thread: u32,
    /// Request id the span belongs to (0 = none).
    pub request: u64,
    /// Connection id the span belongs to (0 = local/none).
    pub conn: u64,
    /// Span start, nanoseconds since the collector epoch.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
}

impl SpanRecord {
    /// The span's end, nanoseconds since the collector epoch.
    pub fn end_nanos(&self) -> u64 {
        self.start_nanos.saturating_add(self.duration_nanos)
    }

    fn pack(&self) -> [u64; RECORD_WORDS] {
        [
            self.seq,
            (self.stage as u64) << 32 | self.thread as u64,
            self.request,
            self.conn,
            self.start_nanos,
            self.duration_nanos,
        ]
    }

    fn unpack(words: [u64; RECORD_WORDS]) -> SpanRecord {
        SpanRecord {
            seq: words[0],
            stage: (words[1] >> 32) as u16,
            thread: words[1] as u32,
            request: words[2],
            conn: words[3],
            start_nanos: words[4],
            duration_nanos: words[5],
        }
    }
}

/// A lock-free SPSC ring of [`SpanRecord`]s. See the module docs for
/// the producer/consumer contract and the ordering argument.
pub struct SpanRing {
    /// `capacity * RECORD_WORDS` words; slot `i` = words
    /// `[i*RECORD_WORDS, (i+1)*RECORD_WORDS)`.
    slots: Box<[AtomicU64]>,
    /// Producer cursor: records pushed (published) so far.
    head: AtomicU64,
    /// Consumer cursor: records drained so far.
    tail: AtomicU64,
    /// Records rejected because the ring was full.
    dropped: AtomicU64,
    /// Power of two.
    capacity: u64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl SpanRing {
    /// A ring holding up to `capacity` records (rounded up to a power
    /// of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> SpanRing {
        let capacity = capacity.max(2).next_power_of_two() as u64;
        SpanRing {
            slots: (0..capacity as usize * RECORD_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity,
        }
    }

    /// The ring's record capacity.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Producer side (owner thread only): appends `record`, or counts a
    /// drop and returns `false` if the ring is full. Wait-free.
    pub fn push(&self, record: &SpanRecord) -> bool {
        // relaxed: the producer is the only writer of `head`; this is a
        // read of its own last store.
        let head = self.head.load(Ordering::Relaxed);
        // Acquire pairs with the consumer's Release store in `drain`:
        // the consumer's reads of freed slots happen-before our writes.
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.capacity {
            // relaxed: independent monotone drop counter.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let base = (head % self.capacity) as usize * RECORD_WORDS;
        for (i, word) in record.pack().into_iter().enumerate() {
            // relaxed: ordered by the Release store of `head` below.
            self.slots[base + i].store(word, Ordering::Relaxed);
        }
        // Release publishes the slot words to the consumer's Acquire
        // load of `head`.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side (collector only): pops every published record, in
    /// push order, into `f`. Records pushed concurrently with the drain
    /// are picked up by the next drain.
    pub fn drain(&self, f: &mut impl FnMut(SpanRecord)) {
        // relaxed: the consumer is the only writer of `tail`.
        let tail = self.tail.load(Ordering::Relaxed);
        // Acquire pairs with the producer's Release store of `head`.
        let head = self.head.load(Ordering::Acquire);
        let mut cursor = tail;
        while cursor != head {
            let base = (cursor % self.capacity) as usize * RECORD_WORDS;
            let mut words = [0u64; RECORD_WORDS];
            for (i, word) in words.iter_mut().enumerate() {
                // relaxed: ordered by the Acquire load of `head` above.
                *word = self.slots[base + i].load(Ordering::Relaxed);
            }
            // Free the slot before invoking `f`, so a panicking callback
            // cannot desynchronise the cursor from the records it saw.
            cursor = cursor.wrapping_add(1);
            // Release: our slot reads happen-before the producer's
            // Acquire load of `tail` lets it overwrite them.
            self.tail.store(cursor, Ordering::Release);
            f(SpanRecord::unpack(words));
        }
    }

    /// Records rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        // relaxed: point-in-time read of a monotone counter.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Published-but-undrained record count (diagnostics).
    pub fn len(&self) -> usize {
        // relaxed: advisory snapshot; both cursors move monotonically.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        head.wrapping_sub(tail) as usize
    }

    /// True when no published record is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> SpanRecord {
        SpanRecord {
            seq,
            stage: (seq % 14) as u16,
            thread: 7,
            request: seq * 10,
            conn: 3,
            start_nanos: seq * 1000,
            duration_nanos: 42,
        }
    }

    #[test]
    fn pack_round_trips() {
        let r = SpanRecord {
            seq: u64::MAX,
            stage: u16::MAX,
            thread: u32::MAX,
            request: 1,
            conn: 2,
            start_nanos: 3,
            duration_nanos: 4,
        };
        assert_eq!(SpanRecord::unpack(r.pack()), r);
    }

    #[test]
    fn push_then_drain_preserves_order_and_content() {
        let ring = SpanRing::with_capacity(8);
        for i in 0..5 {
            assert!(ring.push(&rec(i)));
        }
        let mut out = Vec::new();
        ring.drain(&mut |r| out.push(r));
        assert_eq!(out, (0..5).map(rec).collect::<Vec<_>>());
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_without_blocking() {
        let ring = SpanRing::with_capacity(4);
        let mut pushed = 0;
        for i in 0..10 {
            if ring.push(&rec(i)) {
                pushed += 1;
            }
        }
        assert_eq!(pushed, 4);
        assert_eq!(ring.dropped(), 6);
        let mut out = Vec::new();
        ring.drain(&mut |r| out.push(r));
        // The *oldest* records survive; overflow is dropped at the tail.
        assert_eq!(out, (0..4).map(rec).collect::<Vec<_>>());
        // Space freed by the drain is reusable.
        assert!(ring.push(&rec(99)));
    }

    #[test]
    fn interleaved_push_drain_reconciles_exactly() {
        let ring = SpanRing::with_capacity(4);
        let mut drained = Vec::new();
        let mut next = 0u64;
        for round in 0..50 {
            for _ in 0..(round % 7) {
                ring.push(&rec(next));
                next += 1;
            }
            ring.drain(&mut |r| drained.push(r.seq));
        }
        ring.drain(&mut |r| drained.push(r.seq));
        // No duplicates, in order, and drained + dropped == pushed.
        assert!(drained.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(drained.len() as u64 + ring.dropped(), next);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(SpanRing::with_capacity(0).capacity(), 2);
        assert_eq!(SpanRing::with_capacity(3).capacity(), 4);
        assert_eq!(SpanRing::with_capacity(1024).capacity(), 1024);
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::with_capacity(64));
        let total = 10_000u64;
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..total {
                    while !ring.push(&rec(i)) {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let mut seen = Vec::with_capacity(total as usize);
        while seen.len() < total as usize {
            ring.drain(&mut |r| seen.push(r));
            std::thread::yield_now();
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..total).map(rec).collect::<Vec<_>>());
    }
}
