//! Trace export: Chrome `trace_event` JSON (the array format that
//! `chrome://tracing` and Perfetto load directly) and per-stage
//! aggregation for the `mbb trace` table.

use std::io::{self, Write};

use crate::ring::SpanRecord;
use crate::Stage;

/// Microseconds with nanosecond precision, as Chrome's `ts`/`dur`
/// fields expect.
fn micros(nanos: u64) -> String {
    format!("{:.3}", nanos as f64 / 1000.0)
}

/// Streams [`SpanRecord`]s as one Chrome `trace_event` JSON array of
/// complete (`"ph":"X"`) events. Stable fields per event: `name`
/// (stage label), `cat`, `ph`, `ts`/`dur` (µs since the collector
/// epoch), `pid`, `tid` (obs thread id), and `args` with `seq`,
/// `request`, `conn`.
///
/// ```
/// use mbb_obs::{SpanRecord, TraceWriter};
/// let mut out = Vec::new();
/// let mut w = TraceWriter::new(&mut out)?;
/// w.write(&SpanRecord {
///     seq: 0, stage: 11, thread: 1, request: 42, conn: 0,
///     start_nanos: 1_500, duration_nanos: 2_000,
/// })?;
/// w.finish()?;
/// assert!(String::from_utf8(out)?.contains("\"serve.execute\""));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TraceWriter<W: Write> {
    out: W,
    events: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Opens the JSON array.
    pub fn new(mut out: W) -> io::Result<TraceWriter<W>> {
        out.write_all(b"[")?;
        Ok(TraceWriter { out, events: 0 })
    }

    /// Appends one span as a complete event.
    pub fn write(&mut self, record: &SpanRecord) -> io::Result<()> {
        let name = Stage::from_u16(record.stage).map_or("unknown", Stage::label);
        let sep = if self.events == 0 { "\n" } else { ",\n" };
        write!(
            self.out,
            "{sep}{{\"name\":\"{name}\",\"cat\":\"mbb\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":1,\"tid\":{tid},\"args\":{{\"seq\":{seq},\"request\":{request},\"conn\":{conn}}}}}",
            ts = micros(record.start_nanos),
            dur = micros(record.duration_nanos),
            tid = record.thread,
            seq = record.seq,
            request = record.request,
            conn = record.conn,
        )?;
        self.events += 1;
        Ok(())
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Closes the array and flushes; returns the writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(b"\n]\n")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Per-stage rollup of a drained record set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageAgg {
    /// The stage.
    pub stage: Stage,
    /// Spans recorded for it.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_nanos: u64,
    /// Longest single span, nanoseconds.
    pub max_nanos: u64,
}

impl StageAgg {
    /// Mean span duration, nanoseconds.
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// Rolls records up per stage, in [`Stage::ALL`] order, skipping
/// stages with no spans.
pub fn aggregate(records: &[SpanRecord]) -> Vec<StageAgg> {
    let mut per_stage = [(0u64, 0u64, 0u64); Stage::ALL.len()];
    for r in records {
        if let Some(slot) = per_stage.get_mut(r.stage as usize) {
            slot.0 += 1;
            slot.1 = slot.1.saturating_add(r.duration_nanos);
            slot.2 = slot.2.max(r.duration_nanos);
        }
    }
    Stage::ALL
        .iter()
        .zip(per_stage)
        .filter(|(_, (count, _, _))| *count > 0)
        .map(|(&stage, (count, total_nanos, max_nanos))| StageAgg {
            stage,
            count,
            total_nanos,
            max_nanos,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stage: Stage, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            seq: start,
            stage: stage as u16,
            thread: 2,
            request: 11,
            conn: 1,
            start_nanos: start,
            duration_nanos: dur,
        }
    }

    #[test]
    fn golden_trace_event_json() {
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out).unwrap();
        w.write(&rec(Stage::QueueWait, 1_000, 2_500)).unwrap();
        w.write(&rec(Stage::Execute, 3_500, 10_000)).unwrap();
        assert_eq!(w.events(), 2);
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        // Byte-stable golden for the first event: downstream tooling
        // keys on these exact fields.
        assert!(text.contains(
            "{\"name\":\"serve.queue\",\"cat\":\"mbb\",\"ph\":\"X\",\"ts\":1.000,\"dur\":2.500,\
             \"pid\":1,\"tid\":2,\"args\":{\"seq\":1000,\"request\":11,\"conn\":1}}"
        ));
        // And the whole file is valid JSON of the expected shape.
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = parsed.as_array().expect("top-level array");
        assert_eq!(events.len(), 2);
        for event in events {
            assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
            assert_eq!(event.get("cat").and_then(|v| v.as_str()), Some("mbb"));
            assert!(event.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(event.get("dur").and_then(|v| v.as_f64()).is_some());
            let args = event.get("args").expect("args object");
            assert!(args.get("request").and_then(|v| v.as_u64()).is_some());
        }
        assert_eq!(
            events[1].get("name").and_then(|v| v.as_str()),
            Some("serve.execute")
        );
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let mut out = Vec::new();
        TraceWriter::new(&mut out).unwrap().finish().unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&out).unwrap()).unwrap();
        assert_eq!(parsed.as_array().map(Vec::len), Some(0));
    }

    #[test]
    fn unknown_stage_is_labelled_not_dropped() {
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out).unwrap();
        let mut r = rec(Stage::Parse, 0, 1);
        r.stage = 999;
        w.write(&r).unwrap();
        w.finish().unwrap();
        assert!(String::from_utf8(out).unwrap().contains("\"unknown\""));
    }

    #[test]
    fn aggregate_rolls_up_per_stage_in_taxonomy_order() {
        let records = vec![
            rec(Stage::Execute, 0, 10),
            rec(Stage::QueueWait, 0, 5),
            rec(Stage::Execute, 20, 30),
        ];
        let agg = aggregate(&records);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].stage, Stage::QueueWait);
        assert_eq!((agg[0].count, agg[0].total_nanos), (1, 5));
        assert_eq!(agg[1].stage, Stage::Execute);
        assert_eq!(
            (agg[1].count, agg[1].total_nanos, agg[1].max_nanos),
            (2, 40, 30)
        );
        assert_eq!(agg[1].mean_nanos(), 20);
        assert!(aggregate(&[]).is_empty());
    }
}
