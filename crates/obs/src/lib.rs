//! `mbb-obs` — the workspace observability layer: structured spans,
//! metrics, and trace export, with zero external dependencies (the
//! vendored-offline constraint applies here like everywhere else).
//!
//! Three pieces:
//!
//! * **Spans** ([`span`], [`record`], [`SpanGuard`]): cheap RAII timers
//!   writing fixed-size [`SpanRecord`]s into lock-free per-thread
//!   [`SpanRing`]s. The hot path never blocks and never allocates: a
//!   full ring counts a drop instead of waiting, and a collector
//!   ([`drain`]) pulls completed records out of band. Each span costs
//!   exactly one `Instant::now()` pair, taken at the facade — never
//!   inside solver inner loops (the `obs-hot-clock` lint rule enforces
//!   this for the enumeration kernels).
//! * **Metrics** ([`hist`]): monotone [`Counter`]s, [`Gauge`]s, and
//!   HDR-style log-bucketed [`Histogram`]s (base-2 octaves split into
//!   16 linear sub-buckets, ≤ 6.25 % relative error) with
//!   p50/p90/p99/max readout.
//! * **Trace export** ([`trace`]): drained records serialise as Chrome
//!   `trace_event` JSON (loadable in `chrome://tracing` / Perfetto) or
//!   aggregate into a per-stage table.
//!
//! Instrumentation is compile-out-able: with the `obs-off` cargo
//! feature the span facade is a no-op (no clock reads, no ring
//! traffic); without it, recording still costs only one relaxed atomic
//! load until [`enable`] is called at runtime.
//!
//! ```
//! use mbb_obs::{Stage, enable, drain, span};
//!
//! enable();
//! {
//!     let _guard = mbb_obs::context(42, 1); // request 42, connection 1
//!     let _span = span(Stage::Execute);
//!     // ... work ...
//! }
//! let mut stages = Vec::new();
//! drain(|record| stages.push(record.stage));
//! # #[cfg(not(feature = "obs-off"))]
//! assert!(stages.contains(&(Stage::Execute as u16)));
//! ```

#![warn(missing_docs)]

pub mod hist;
pub mod ring;
mod span;
pub mod trace;

pub use hist::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use ring::{SpanRecord, SpanRing};
pub use span::{
    context, disable, drain, dropped_records, enable, is_enabled, record, record_for, span,
    span_for, ContextGuard, SpanGuard,
};
pub use trace::{aggregate, StageAgg, TraceWriter};

/// The span taxonomy: every instrumentation site names one of these.
/// Values are stable wire/trace identifiers (stored as `u16` in
/// [`SpanRecord::stage`]); labels are the dotted names that appear in
/// trace files and the `mbb trace` table.
#[repr(u16)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Bidegeneracy peel-order construction (engine index build).
    PreprocessOrder = 0,
    /// Bicore decomposition (engine index build).
    PreprocessBicore = 1,
    /// Two-hop index construction (engine index build).
    PreprocessTwoHop = 2,
    /// Solver stage 1: heuristic + reduction (`hmbb`).
    SolveHeuristic = 3,
    /// Solver stage 2: vertex-centred bridging, whole stage.
    SolveBridge = 4,
    /// One centre's bridging subproblem inside stage 2.
    BridgeCentre = 5,
    /// Solver stage 3: candidate verification.
    SolveVerify = 6,
    /// One dense branch-and-bound search (inside verification).
    DenseSearch = 7,
    /// Wire-line parse in the serve reader.
    Parse = 8,
    /// Admission processing incl. backpressure wait for a queue slot.
    AdmissionWait = 9,
    /// Admission-to-dispatch wait in the EDF queue.
    QueueWait = 10,
    /// Dispatch-to-response execution on a worker.
    Execute = 11,
    /// Response encoding to a JSONL line.
    Encode = 12,
    /// Per-connection outbox write (socket mode).
    Outbox = 13,
}

impl Stage {
    /// Every stage, in discriminant order (table/report iteration).
    pub const ALL: [Stage; 14] = [
        Stage::PreprocessOrder,
        Stage::PreprocessBicore,
        Stage::PreprocessTwoHop,
        Stage::SolveHeuristic,
        Stage::SolveBridge,
        Stage::BridgeCentre,
        Stage::SolveVerify,
        Stage::DenseSearch,
        Stage::Parse,
        Stage::AdmissionWait,
        Stage::QueueWait,
        Stage::Execute,
        Stage::Encode,
        Stage::Outbox,
    ];

    /// The stage's stable dotted name (trace `name` field, table rows).
    pub fn label(self) -> &'static str {
        match self {
            Stage::PreprocessOrder => "preprocess.order",
            Stage::PreprocessBicore => "preprocess.bicore",
            Stage::PreprocessTwoHop => "preprocess.two_hop",
            Stage::SolveHeuristic => "solve.heuristic",
            Stage::SolveBridge => "solve.bridge",
            Stage::BridgeCentre => "solve.bridge_centre",
            Stage::SolveVerify => "solve.verify",
            Stage::DenseSearch => "solve.dense",
            Stage::Parse => "serve.parse",
            Stage::AdmissionWait => "serve.admission_wait",
            Stage::QueueWait => "serve.queue",
            Stage::Execute => "serve.execute",
            Stage::Encode => "serve.encode",
            Stage::Outbox => "serve.outbox",
        }
    }

    /// Decodes a [`SpanRecord::stage`] discriminant.
    pub fn from_u16(value: u16) -> Option<Stage> {
        Stage::ALL.get(value as usize).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_discriminants_round_trip() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(*stage as u16 as usize, i);
            assert_eq!(Stage::from_u16(*stage as u16), Some(*stage));
        }
        assert_eq!(Stage::from_u16(Stage::ALL.len() as u16), None);
    }

    #[test]
    fn stage_labels_are_unique() {
        let mut labels: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Stage::ALL.len());
    }
}
