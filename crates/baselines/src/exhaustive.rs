//! Brute-force exact MBB — the correctness oracle.
//!
//! Enumerates every subset of the smaller side (≤ 2^min(|L|, |R|) states)
//! and pairs it with its full common neighbourhood; only usable on tiny
//! graphs, but unarguably correct, which is what integration and property
//! tests need.

use mbb_bigraph::graph::{sorted_intersection, BipartiteGraph};
use mbb_core::biclique::Biclique;

/// Exact maximum balanced biclique by subset enumeration. Panics if the
/// smaller side exceeds 24 vertices.
pub fn brute_force_mbb(graph: &BipartiteGraph) -> Biclique {
    let nl = graph.num_left();
    let nr = graph.num_right();
    let flip = nr < nl;
    let side = nl.min(nr);
    assert!(side <= 24, "brute force is for tiny graphs (side = {side})");

    let neighbors = |i: u32| -> &[u32] {
        if flip {
            graph.neighbors_right(i)
        } else {
            graph.neighbors_left(i)
        }
    };

    let mut best = Biclique::empty();
    for mask in 0u64..(1u64 << side) {
        let mut chosen: Vec<u32> = Vec::new();
        let mut common: Option<Vec<u32>> = None;
        let mut dead = false;
        for i in 0..side as u32 {
            if mask >> i & 1 == 1 {
                chosen.push(i);
                common = Some(match common {
                    None => neighbors(i).to_vec(),
                    Some(c) => sorted_intersection(&c, neighbors(i)),
                });
                if common.as_ref().is_some_and(|c| c.is_empty()) {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            continue;
        }
        let other = common.unwrap_or_default();
        let half = chosen.len().min(other.len());
        if half > best.half_size() {
            let (left, right) = if flip {
                (other, chosen)
            } else {
                (chosen, other)
            };
            best = Biclique::balanced(left, right);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;

    #[test]
    fn complete_graph() {
        let g = generators::complete(4, 7);
        let b = brute_force_mbb(&g);
        assert_eq!(b.half_size(), 4);
        assert!(b.is_valid(&g));
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        assert_eq!(brute_force_mbb(&g).half_size(), 0);
    }

    #[test]
    fn uses_smaller_side() {
        // 30 left but only 6 right: enumeration must flip sides.
        let g = generators::uniform_edges(30, 6, 100, 1);
        let b = brute_force_mbb(&g);
        assert!(b.is_valid(&g));
        assert!(b.half_size() >= 1);
    }

    #[test]
    fn agrees_with_core_solver() {
        for seed in 0..10u64 {
            let g = generators::uniform_edges(11, 11, 55, seed);
            let brute = brute_force_mbb(&g);
            let solved = mbb_core::MbbSolver::new().solve(&g).biclique;
            assert_eq!(brute.half_size(), solved.half_size(), "seed {seed}");
        }
    }

    #[test]
    fn single_edge() {
        let g = BipartiteGraph::from_edges(1, 1, [(0, 0)]).unwrap();
        let b = brute_force_mbb(&g);
        assert_eq!(b.half_size(), 1);
    }
}
