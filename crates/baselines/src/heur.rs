//! Heuristic MBB algorithms used as step-1 substitutes in the `adp*`
//! baselines (Table 3): POLS (Wang, Cai, Yin 2018) and SBMNAS (Li, Hao, Wu
//! 2020).
//!
//! Both are local-search metaheuristics re-implemented at the level the MBB
//! paper relies on — producing a large incumbent for pruning, quickly:
//!
//! * **POLS** — pair-operation local search: states are balanced bicliques;
//!   moves add a pair `(u, v)`, swap a pair in/out, or drop a pair; greedy
//!   with random restarts.
//! * **SBMNAS** — swap-based multiple-neighbourhood adaptive search:
//!   generalises the moves to multi-vertex add/swap/drop batches and
//!   adaptively prefers the neighbourhood that has recently improved.
//!
//! Neither guarantees optimality (§7 of the paper).

use std::time::Duration;

use mbb_bigraph::graph::{sorted_intersection, BipartiteGraph};
use mbb_core::biclique::Biclique;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::Deadline;

/// A mutable balanced-biclique state for local search.
#[derive(Clone, Debug, Default)]
struct State {
    a: Vec<u32>,
    b: Vec<u32>,
}

impl State {
    fn half(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    /// Common right-neighbourhood of `a` (whole right side when empty).
    fn common_right(&self, graph: &BipartiteGraph) -> Vec<u32> {
        common_neighbors_left(graph, &self.a)
    }

    fn common_left(&self, graph: &BipartiteGraph) -> Vec<u32> {
        common_neighbors_right(graph, &self.b)
    }
}

fn common_neighbors_left(graph: &BipartiteGraph, a: &[u32]) -> Vec<u32> {
    match a.split_first() {
        None => (0..graph.num_right() as u32).collect(),
        Some((&first, rest)) => {
            let mut c = graph.neighbors_left(first).to_vec();
            for &u in rest {
                c = sorted_intersection(&c, graph.neighbors_left(u));
                if c.is_empty() {
                    break;
                }
            }
            c
        }
    }
}

fn common_neighbors_right(graph: &BipartiteGraph, b: &[u32]) -> Vec<u32> {
    match b.split_first() {
        None => (0..graph.num_left() as u32).collect(),
        Some((&first, rest)) => {
            let mut c = graph.neighbors_right(first).to_vec();
            for &v in rest {
                c = sorted_intersection(&c, graph.neighbors_right(v));
                if c.is_empty() {
                    break;
                }
            }
            c
        }
    }
}

/// Tries to extend the state by one `(u, v)` pair; true on success.
fn add_pair(graph: &BipartiteGraph, state: &mut State, rng: &mut StdRng) -> bool {
    // u must be adjacent to all of B, v to all of A ∪ {u}.
    let left_candidates: Vec<u32> = state
        .common_left(graph)
        .into_iter()
        .filter(|u| !state.a.contains(u))
        .collect();
    if left_candidates.is_empty() {
        return false;
    }
    // Scan a random rotation so restarts explore different pairs.
    let common = state.common_right(graph);
    let start = rng.gen_range(0..left_candidates.len());
    for offset in 0..left_candidates.len() {
        let u = left_candidates[(start + offset) % left_candidates.len()];
        let with_u = sorted_intersection(&common, graph.neighbors_left(u));
        if let Some(&v) = with_u.iter().find(|v| !state.b.contains(v)) {
            state.a.push(u);
            state.b.push(v);
            return true;
        }
    }
    false
}

/// Drops a random pair (perturbation).
fn drop_pair(state: &mut State, rng: &mut StdRng) {
    if state.a.is_empty() {
        return;
    }
    let i = rng.gen_range(0..state.a.len());
    state.a.swap_remove(i);
    let j = rng.gen_range(0..state.b.len());
    state.b.swap_remove(j);
}

/// Swap: drop one pair, then greedily re-add up to two pairs.
fn swap_pair(graph: &BipartiteGraph, state: &mut State, rng: &mut StdRng) -> bool {
    drop_pair(state, rng);
    let mut grew = false;
    for _ in 0..2 {
        grew |= add_pair(graph, state, rng);
    }
    grew
}

fn greedy_seed(graph: &BipartiteGraph, rng: &mut StdRng) -> State {
    let nl = graph.num_left();
    if nl == 0 || graph.num_right() == 0 || graph.num_edges() == 0 {
        return State::default();
    }
    // Seed from a random reasonably-high-degree left vertex.
    let mut candidates: Vec<u32> = (0..nl as u32)
        .filter(|&u| graph.degree_left(u) > 0)
        .collect();
    if candidates.is_empty() {
        return State::default();
    }
    candidates.sort_by_key(|&u| std::cmp::Reverse(graph.degree_left(u)));
    candidates.truncate((candidates.len() / 4).max(1));
    let u = candidates[rng.gen_range(0..candidates.len())];
    let v = graph.neighbors_left(u)[0];
    let mut state = State {
        a: vec![u],
        b: vec![v],
    };
    while add_pair(graph, &mut state, rng) {}
    state
}

/// POLS: greedy construction plus pair add/swap/drop local search with
/// random restarts until the budget or `max_iterations` is exhausted.
pub fn pols(graph: &BipartiteGraph, seed: u64, budget: Option<Duration>) -> Biclique {
    let deadline = Deadline::new(budget);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = Biclique::empty();
    let restarts = 6usize;
    for _ in 0..restarts {
        if deadline.expired() {
            break;
        }
        let mut state = greedy_seed(graph, &mut rng);
        let mut stall = 0usize;
        while stall < 20 && !deadline.expired() {
            let improved = if rng.gen_bool(0.5) {
                add_pair(graph, &mut state, &mut rng)
            } else {
                swap_pair(graph, &mut state, &mut rng)
            };
            if state.half() > best.half_size() {
                best = Biclique::balanced(state.a.clone(), state.b.clone());
                stall = 0;
            } else if !improved {
                stall += 1;
            }
        }
    }
    debug_assert!(best.is_valid(graph));
    best
}

/// SBMNAS: multi-vertex moves with adaptive neighbourhood weights.
pub fn sbmnas(graph: &BipartiteGraph, seed: u64, budget: Option<Duration>) -> Biclique {
    let deadline = Deadline::new(budget);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5b3a);
    let mut best = Biclique::empty();
    // Adaptive weights over three neighbourhoods: add-batch, swap, drop.
    let mut weights = [1.0f64; 3];
    let restarts = 6usize;
    for _ in 0..restarts {
        if deadline.expired() {
            break;
        }
        let mut state = greedy_seed(graph, &mut rng);
        let mut stall = 0usize;
        while stall < 25 && !deadline.expired() {
            let total: f64 = weights.iter().sum();
            let mut pick = rng.gen_range(0.0..total);
            let mut move_index = 0usize;
            for (i, &w) in weights.iter().enumerate() {
                if pick < w {
                    move_index = i;
                    break;
                }
                pick -= w;
            }
            let before = state.half();
            match move_index {
                0 => {
                    // Add a batch of up to 3 pairs.
                    for _ in 0..3 {
                        if !add_pair(graph, &mut state, &mut rng) {
                            break;
                        }
                    }
                }
                1 => {
                    let _ = swap_pair(graph, &mut state, &mut rng);
                }
                _ => {
                    // Drop two pairs and rebuild greedily.
                    drop_pair(&mut state, &mut rng);
                    drop_pair(&mut state, &mut rng);
                    while add_pair(graph, &mut state, &mut rng) {}
                }
            }
            let gained = state.half() > before;
            // Adaptive update: reinforce neighbourhoods that help.
            weights[move_index] =
                (weights[move_index] * if gained { 1.3 } else { 0.9 }).clamp(0.2, 8.0);
            if state.half() > best.half_size() {
                best = Biclique::balanced(state.a.clone(), state.b.clone());
                stall = 0;
            } else {
                stall += 1;
            }
        }
    }
    debug_assert!(best.is_valid(graph));
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;

    #[test]
    fn pols_finds_complete_graph() {
        let g = generators::complete(5, 5);
        let b = pols(&g, 1, None);
        assert_eq!(b.half_size(), 5);
        assert!(b.is_valid(&g));
    }

    #[test]
    fn sbmnas_finds_complete_graph() {
        let g = generators::complete(5, 5);
        let b = sbmnas(&g, 1, None);
        assert_eq!(b.half_size(), 5);
        assert!(b.is_valid(&g));
    }

    #[test]
    fn both_return_valid_bicliques_on_random_graphs() {
        for seed in 0..8u64 {
            let g = generators::uniform_edges(30, 30, 200, seed);
            let p = pols(&g, seed, None);
            assert!(p.is_valid(&g), "pols seed {seed}");
            let s = sbmnas(&g, seed, None);
            assert!(s.is_valid(&g), "sbmnas seed {seed}");
            // With 200 edges on 30x30 some 2x2 exists almost surely; at
            // minimum a 1x1 must be found.
            assert!(p.half_size() >= 1);
            assert!(s.half_size() >= 1);
        }
    }

    #[test]
    fn heuristics_find_planted_bicliques_approximately() {
        let g = generators::uniform_edges(60, 60, 300, 4);
        let (planted, _, _) = generators::plant_balanced_biclique(&g, 8);
        let p = pols(&planted, 2, None);
        let s = sbmnas(&planted, 2, None);
        assert!(p.half_size() >= 4, "pols found {}", p.half_size());
        assert!(s.half_size() >= 4, "sbmnas found {}", s.half_size());
    }

    #[test]
    fn empty_graph_yields_empty() {
        let g = BipartiteGraph::from_edges(4, 4, []).unwrap();
        assert_eq!(pols(&g, 0, None).half_size(), 0);
        assert_eq!(sbmnas(&g, 0, None).half_size(), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = generators::uniform_edges(25, 25, 160, 7);
        assert_eq!(pols(&g, 3, None), pols(&g, 3, None));
        assert_eq!(sbmnas(&g, 3, None), sbmnas(&g, 3, None));
    }
}
