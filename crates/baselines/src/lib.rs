//! Baseline MBB algorithms the paper compares against (§3, §6, Table 3):
//!
//! * [`ext_bbclq`](crate::ext_bbclq()) — the state-of-the-art exact
//!   algorithm of Zhou, Rossi and Hao (2018);
//! * [`mbe`] — adapted maximal-biclique-enumeration engines (iMBEA, FMBE)
//!   with incumbent/core pruning;
//! * [`heur`] — the POLS and SBMNAS heuristic MBB algorithms;
//! * [`adapted`] — the `adp1`–`adp4` pipelines combining them;
//! * [`exhaustive`] — a brute-force oracle for testing.

#![warn(missing_docs)]

pub mod adapted;
pub mod common;
pub mod exhaustive;
pub mod ext_bbclq;
pub mod heur;
pub mod mbe;

pub use adapted::{all_adapted, AdaptedBaseline};
pub use common::RunOutcome;
pub use ext_bbclq::ext_bbclq;
