//! `extBBClq` — re-implementation of the state-of-the-art exact algorithm
//! of Zhou, Rossi and Hao (EJOR 2018), the paper's main baseline (§3).
//!
//! A branch-and-bound over vertices in non-increasing global degree order
//! with *precomputed* per-vertex upper bounds:
//!
//! * the bound `i_v` of `v ∈ L` is the largest integer such that `i_v`
//!   vertices of `L` (including `v`) share at least `i_v` common neighbours
//!   with `v` (an h-index over common-neighbour counts);
//! * the tight bound `t_u` is the largest `t` such that `t` neighbours of
//!   `u` have bound ≥ `t`.
//!
//! When branching at `u`, the include-branch is pruned if `2·t_u` cannot
//! exceed the incumbent. As §3 discusses, both weaknesses reproduced here
//! are intentional: on dense graphs every `t_u` looks promising, and the
//! static total order neither finds large incumbents early nor bounds the
//! search space — which is exactly what Tables 4 and 5 measure.

use std::time::Duration;

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::graph::{BipartiteGraph, Side, Vertex};
use mbb_core::biclique::Biclique;

use crate::common::{Deadline, RunOutcome};

/// h-index of a slice of counts: largest `h` with ≥ `h` entries ≥ `h`.
fn h_index(counts: &mut [u32]) -> u32 {
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let mut h = 0u32;
    for (i, &c) in counts.iter().enumerate() {
        if c as usize > i {
            h = h.max((i + 1).min(c as usize) as u32);
        } else {
            break;
        }
    }
    h
}

/// Per-vertex upper bounds (`i_v` then `t_v`), indexed by global id.
/// Returns `None` when the deadline expires during precomputation.
pub fn tight_upper_bounds(graph: &BipartiteGraph, deadline: Deadline) -> Option<Vec<u32>> {
    let nl = graph.num_left();
    let nr = graph.num_right();
    let n = nl + nr;
    let mut i_bound = vec![0u32; n];

    // Common-neighbour counts per side via 2-hop accumulation.
    let mut side_bounds = |side: Side| -> Option<()> {
        let count = if side == Side::Left { nl } else { nr };
        let mut counter: Vec<u32> = vec![0; count];
        let mut touched: Vec<u32> = Vec::new();
        for idx in 0..count as u32 {
            if deadline.expired() {
                return None;
            }
            let v = Vertex { side, index: idx };
            for &mid in graph.neighbors(v) {
                let mid_v = Vertex {
                    side: side.opposite(),
                    index: mid,
                };
                for &w in graph.neighbors(mid_v) {
                    if counter[w as usize] == 0 {
                        touched.push(w);
                    }
                    counter[w as usize] += 1;
                }
            }
            // counter[v] = deg(v): v's own entry participates (v is one of
            // the i_v vertices).
            let mut counts: Vec<u32> = touched.iter().map(|&w| counter[w as usize]).collect();
            i_bound[graph.global_id(v)] = h_index(&mut counts);
            for &w in &touched {
                counter[w as usize] = 0;
            }
            touched.clear();
        }
        Some(())
    };
    side_bounds(Side::Left)?;
    side_bounds(Side::Right)?;

    // Tight bounds from neighbours' i-bounds.
    let mut tight = vec![0u32; n];
    for v in graph.vertices() {
        if deadline.expired() {
            return None;
        }
        let mut counts: Vec<u32> = graph
            .neighbors(v)
            .iter()
            .map(|&w| {
                let wv = Vertex {
                    side: v.side.opposite(),
                    index: w,
                };
                i_bound[graph.global_id(wv)]
            })
            .collect();
        tight[graph.global_id(v)] = h_index(&mut counts);
    }
    Some(tight)
}

struct ExtSearcher<'g> {
    graph: &'g BipartiteGraph,
    /// Global ids sorted by non-increasing degree; `rank[g]` is position.
    rank: Vec<u32>,
    tight: Vec<u32>,
    best: Biclique,
    best_half: usize,
    nodes: u64,
    deadline: Deadline,
    timed_out: bool,
}

/// Runs `extBBClq`. The budget covers bound precomputation and search.
pub fn ext_bbclq(graph: &BipartiteGraph, budget: Option<Duration>) -> RunOutcome {
    let deadline = Deadline::new(budget);
    let Some(tight) = tight_upper_bounds(graph, deadline) else {
        return RunOutcome {
            biclique: Biclique::empty(),
            timed_out: true,
            nodes: 0,
        };
    };

    let n = graph.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let degree_of = |g: u32| {
        let v = graph.vertex_of_global(g as usize);
        graph.degree(v)
    };
    order.sort_by_key(|&g| (std::cmp::Reverse(degree_of(g)), g));
    let mut rank = vec![0u32; n];
    for (i, &g) in order.iter().enumerate() {
        rank[g as usize] = i as u32;
    }

    let mut searcher = ExtSearcher {
        graph,
        rank,
        tight,
        best: Biclique::empty(),
        best_half: 0,
        nodes: 0,
        deadline,
        timed_out: false,
    };

    // Candidates sorted by rank (the paper's total search order).
    let mut ca: Vec<u32> = (0..graph.num_left() as u32).collect();
    ca.sort_by_key(|&u| searcher.rank[u as usize]);
    let mut cb: Vec<u32> = (0..graph.num_right() as u32).collect();
    cb.sort_by_key(|&v| searcher.rank[graph.num_left() + v as usize]);

    searcher.recurse(&mut Vec::new(), &mut Vec::new(), &ca, &cb);
    RunOutcome {
        biclique: searcher.best,
        timed_out: searcher.timed_out,
        nodes: searcher.nodes,
    }
}

impl ExtSearcher<'_> {
    fn record(&mut self, a: &[u32], b: &[u32]) {
        let half = a.len().min(b.len());
        if half > self.best_half {
            self.best_half = half;
            self.best = Biclique::balanced(a.to_vec(), b.to_vec());
        }
    }

    /// Exclude chains are a *loop* over the candidate suffix (the paper's
    /// total order walks one vertex at a time); only include branches
    /// recurse, so the stack depth is bounded by the biclique being built
    /// rather than by the candidate count.
    fn recurse(&mut self, a: &mut Vec<u32>, b: &mut Vec<u32>, ca: &[u32], cb: &[u32]) {
        let mut ca = ca;
        let mut cb = cb;
        loop {
            self.nodes += 1;
            if self.timed_out || (self.nodes.is_multiple_of(1024) && self.deadline.expired()) {
                self.timed_out = true;
                return;
            }
            self.record(a, b);

            // Simple bounding.
            if (a.len() + ca.len()).min(b.len() + cb.len()) <= self.best_half {
                return;
            }

            // Next vertex in the global degree order.
            let next_left = ca.first().map(|&u| self.rank[u as usize]);
            let next_right = cb
                .first()
                .map(|&v| self.rank[self.graph.num_left() + v as usize]);
            let take_left = match (next_left, next_right) {
                (None, None) => return,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(l), Some(r)) => l < r,
            };

            if take_left {
                let u = ca[0];
                let rest = &ca[1..];
                // Include u unless its tight bound cannot beat the incumbent.
                if self.tight[u as usize] as usize > self.best_half {
                    let neighbors = self.graph.neighbors_left(u);
                    let mut membership = BitSet::new(self.graph.num_right());
                    for &w in neighbors {
                        membership.insert(w as usize);
                    }
                    let new_cb: Vec<u32> = cb
                        .iter()
                        .copied()
                        .filter(|&v| membership.contains(v as usize))
                        .collect();
                    a.push(u);
                    self.recurse(a, b, rest, &new_cb);
                    a.pop();
                }
                ca = rest; // exclude u and continue in place
            } else {
                let v = cb[0];
                let rest = &cb[1..];
                let g = self.graph.num_left() + v as usize;
                if self.tight[g] as usize > self.best_half {
                    let neighbors = self.graph.neighbors_right(v);
                    let mut membership = BitSet::new(self.graph.num_left());
                    for &w in neighbors {
                        membership.insert(w as usize);
                    }
                    let new_ca: Vec<u32> = ca
                        .iter()
                        .copied()
                        .filter(|&u| membership.contains(u as usize))
                        .collect();
                    b.push(v);
                    self.recurse(a, b, &new_ca, rest);
                    b.pop();
                }
                cb = rest;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;

    fn brute_half(graph: &BipartiteGraph) -> usize {
        let nl = graph.num_left();
        assert!(nl <= 16);
        let mut best = 0;
        for mask in 0u32..(1 << nl) {
            let mut common: Option<Vec<u32>> = None;
            let mut size = 0;
            for u in 0..nl as u32 {
                if mask >> u & 1 == 1 {
                    size += 1;
                    let n = graph.neighbors_left(u);
                    common = Some(match common {
                        None => n.to_vec(),
                        Some(c) => mbb_bigraph::graph::sorted_intersection(&c, n),
                    });
                }
            }
            best = best.max(size.min(common.map_or(0, |c| c.len())));
        }
        best
    }

    #[test]
    fn h_index_basics() {
        assert_eq!(h_index(&mut []), 0);
        assert_eq!(h_index(&mut [5, 5, 5]), 3);
        assert_eq!(h_index(&mut [1, 1, 1, 1]), 1);
        assert_eq!(h_index(&mut [4, 3, 2, 1]), 2);
        assert_eq!(h_index(&mut [10]), 1);
    }

    #[test]
    fn bounds_dominate_optimum() {
        // For every vertex in an optimum (k,k) biclique, t_v ≥ k.
        for seed in 0..8u64 {
            let g = generators::uniform_edges(10, 10, 50, seed);
            let tight = tight_upper_bounds(&g, Deadline::unlimited()).unwrap();
            let opt = brute_half(&g);
            // At least the optimum's vertices have t ≥ opt, so the max does.
            let max_t = tight.iter().copied().max().unwrap_or(0);
            assert!(max_t as usize >= opt, "seed {seed}: max_t {max_t} < {opt}");
        }
    }

    #[test]
    fn exact_on_small_random_graphs() {
        for seed in 0..15u64 {
            let g = generators::uniform_edges(9, 9, 40, seed);
            let out = ext_bbclq(&g, None);
            assert!(!out.timed_out);
            assert_eq!(out.biclique.half_size(), brute_half(&g), "seed {seed}");
            assert!(out.biclique.is_valid(&g), "seed {seed}");
        }
    }

    #[test]
    fn exact_on_dense_graphs() {
        for seed in 0..8u64 {
            let g = generators::dense_uniform(8, 8, 0.85, seed);
            let out = ext_bbclq(&g, None);
            assert_eq!(out.biclique.half_size(), brute_half(&g), "seed {seed}");
        }
    }

    #[test]
    fn respects_timeout() {
        let g = generators::dense_uniform(64, 64, 0.9, 1);
        let out = ext_bbclq(&g, Some(Duration::from_millis(30)));
        assert!(out.timed_out);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        let out = ext_bbclq(&g, None);
        assert_eq!(out.biclique.half_size(), 0);
        assert!(!out.timed_out);
    }

    #[test]
    fn complete_graph() {
        let g = generators::complete(5, 5);
        let out = ext_bbclq(&g, None);
        assert_eq!(out.biclique.half_size(), 5);
    }
}
