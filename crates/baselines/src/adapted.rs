//! The `adp1`–`adp4` non-trivial baselines of Table 3: state-of-the-art
//! heuristics plugged into step 1 of the framework, adapted MBE engines
//! replacing steps 2–3.
//!
//! | Baseline | Step-1 heuristic | Step-3 enumerator |
//! |----------|------------------|-------------------|
//! | `adp1`   | POLS             | FMBE              |
//! | `adp2`   | POLS             | iMBEA             |
//! | `adp3`   | SBMNAS           | FMBE              |
//! | `adp4`   | SBMNAS           | iMBEA             |
//!
//! All four share the Lemma 4 core reduction between the stages and the
//! core-number upper bound inside the enumerators, exactly as §6 describes
//! ("the heuristic algorithms that we used are for pruning purpose only").

use std::time::Duration;

use mbb_bigraph::core_decomp::{core_decomposition, k_core_mask};
use mbb_bigraph::graph::BipartiteGraph;
use mbb_bigraph::subgraph::induce_by_mask;
use mbb_core::biclique::Biclique;
use mbb_core::heuristic::map_to_parent;

use crate::common::RunOutcome;
use crate::heur::{pols, sbmnas};
use crate::mbe::{fmbe_adapted, imbea_adapted};

/// Which heuristic fills step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOneHeuristic {
    /// Pair-operation local search.
    Pols,
    /// Swap-based multiple-neighbourhood adaptive search.
    Sbmnas,
}

/// Which adapted MBE engine fills step 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepThreeEngine {
    /// 2-hop-scoped enumeration.
    Fmbe,
    /// Whole-graph enumeration.
    Imbea,
}

/// One of the four adapted baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptedBaseline {
    /// Step-1 heuristic.
    pub heuristic: StepOneHeuristic,
    /// Step-3 enumerator.
    pub engine: StepThreeEngine,
}

impl AdaptedBaseline {
    /// `adp1`: POLS + FMBE.
    pub fn adp1() -> Self {
        AdaptedBaseline {
            heuristic: StepOneHeuristic::Pols,
            engine: StepThreeEngine::Fmbe,
        }
    }

    /// `adp2`: POLS + iMBEA.
    pub fn adp2() -> Self {
        AdaptedBaseline {
            heuristic: StepOneHeuristic::Pols,
            engine: StepThreeEngine::Imbea,
        }
    }

    /// `adp3`: SBMNAS + FMBE.
    pub fn adp3() -> Self {
        AdaptedBaseline {
            heuristic: StepOneHeuristic::Sbmnas,
            engine: StepThreeEngine::Fmbe,
        }
    }

    /// `adp4`: SBMNAS + iMBEA.
    pub fn adp4() -> Self {
        AdaptedBaseline {
            heuristic: StepOneHeuristic::Sbmnas,
            engine: StepThreeEngine::Imbea,
        }
    }

    /// The Table 3 label.
    pub fn name(&self) -> &'static str {
        match (self.heuristic, self.engine) {
            (StepOneHeuristic::Pols, StepThreeEngine::Fmbe) => "adp1",
            (StepOneHeuristic::Pols, StepThreeEngine::Imbea) => "adp2",
            (StepOneHeuristic::Sbmnas, StepThreeEngine::Fmbe) => "adp3",
            (StepOneHeuristic::Sbmnas, StepThreeEngine::Imbea) => "adp4",
        }
    }

    /// Runs the baseline. The whole pipeline shares one budget.
    pub fn run(&self, graph: &BipartiteGraph, budget: Option<Duration>) -> RunOutcome {
        let start = std::time::Instant::now();
        // Step 1: heuristic incumbent (¼ of the budget, like the paper's
        // "pruning purpose only" role).
        let heuristic_budget = budget.map(|b| b / 4);
        let incumbent = match self.heuristic {
            StepOneHeuristic::Pols => pols(graph, 0xadb1, heuristic_budget),
            StepOneHeuristic::Sbmnas => sbmnas(graph, 0xadb1, heuristic_budget),
        };

        // Lemma 4 reduction with the incumbent.
        let cores = core_decomposition(graph);
        let mask = k_core_mask(&cores, incumbent.half_size() as u32 + 1);
        let nl = graph.num_left();
        let reduced = induce_by_mask(graph, &mask[..nl], &mask[nl..]);

        if reduced.graph.num_left() == 0 || reduced.graph.num_right() == 0 {
            return RunOutcome {
                biclique: incumbent,
                timed_out: false,
                nodes: 0,
            };
        }

        // Step 3: adapted MBE on the reduced graph; the incumbent prunes
        // but lives in original ids, so pass only its size as a
        // placeholder and map any improvement back.
        let placeholder = Biclique {
            left: vec![u32::MAX; incumbent.half_size()],
            right: vec![u32::MAX; incumbent.half_size()],
        };
        let remaining = budget.map(|b| b.saturating_sub(start.elapsed()));
        let out = match self.engine {
            StepThreeEngine::Fmbe => fmbe_adapted(&reduced.graph, placeholder, remaining),
            StepThreeEngine::Imbea => imbea_adapted(&reduced.graph, placeholder, remaining),
        };
        let best = if out.biclique.half_size() > incumbent.half_size() {
            map_to_parent(&out.biclique, &reduced)
        } else {
            incumbent
        };
        RunOutcome {
            biclique: best,
            timed_out: out.timed_out,
            nodes: out.nodes,
        }
    }
}

/// All four baselines in Table 3 order.
pub fn all_adapted() -> [AdaptedBaseline; 4] {
    [
        AdaptedBaseline::adp1(),
        AdaptedBaseline::adp2(),
        AdaptedBaseline::adp3(),
        AdaptedBaseline::adp4(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;

    fn brute_half(graph: &BipartiteGraph) -> usize {
        let nl = graph.num_left();
        assert!(nl <= 16);
        let mut best = 0;
        for mask in 0u32..(1 << nl) {
            let mut common: Option<Vec<u32>> = None;
            let mut size = 0;
            for u in 0..nl as u32 {
                if mask >> u & 1 == 1 {
                    size += 1;
                    let n = graph.neighbors_left(u);
                    common = Some(match common {
                        None => n.to_vec(),
                        Some(c) => mbb_bigraph::graph::sorted_intersection(&c, n),
                    });
                }
            }
            best = best.max(size.min(common.map_or(0, |c| c.len())));
        }
        best
    }

    #[test]
    fn names_match_table3() {
        assert_eq!(AdaptedBaseline::adp1().name(), "adp1");
        assert_eq!(AdaptedBaseline::adp2().name(), "adp2");
        assert_eq!(AdaptedBaseline::adp3().name(), "adp3");
        assert_eq!(AdaptedBaseline::adp4().name(), "adp4");
    }

    #[test]
    fn all_four_are_exact_on_small_graphs() {
        for seed in 0..6u64 {
            let g = generators::uniform_edges(10, 10, 50, seed);
            let expected = brute_half(&g);
            for baseline in all_adapted() {
                let out = baseline.run(&g, None);
                assert!(!out.timed_out);
                assert_eq!(
                    out.biclique.half_size(),
                    expected,
                    "{} seed {seed}",
                    baseline.name()
                );
                assert!(out.biclique.is_valid(&g), "{} seed {seed}", baseline.name());
            }
        }
    }

    #[test]
    fn finds_planted_biclique() {
        let g = generators::uniform_edges(40, 40, 150, 9);
        let (planted, _, _) = generators::plant_balanced_biclique(&g, 6);
        for baseline in all_adapted() {
            let out = baseline.run(&planted, None);
            assert!(
                out.biclique.half_size() >= 6,
                "{}: {}",
                baseline.name(),
                out.biclique.half_size()
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(3, 3, []).unwrap();
        for baseline in all_adapted() {
            assert_eq!(baseline.run(&g, None).biclique.half_size(), 0);
        }
    }
}
