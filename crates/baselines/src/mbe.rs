//! Adapted maximal-biclique-enumeration engines — the `adp*` baselines'
//! step-3 searchers (Table 3).
//!
//! Following §6's protocol, the MBE algorithms iMBEA (Zhang et al. 2014)
//! and FMBE (Das & Tirthapura 2019) are adapted to MBB search by removing
//! maximality and duplication checking and adding two prunes: the incumbent
//! bound `min(|A| + |cand|, |B|) ≤ best_half`, and a core-number upper
//! bound (a vertex with core number ≤ `best_half` cannot participate in a
//! strictly larger balanced biclique).
//!
//! * [`imbea_adapted`] enumerates left-rooted subsets over the whole graph
//!   with candidates ordered by shrinking common neighbourhood (the iMBEA
//!   branching heuristic).
//! * [`fmbe_adapted`] adds FMBE's key improvement: before enumerating the
//!   bicliques through a vertex, the scope is reduced to its 2-hop
//!   neighbourhood (under a fixed total order to avoid duplicates).

use std::time::Duration;

use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::core_decomp::core_decomposition;
use mbb_bigraph::graph::{sorted_intersection_exact, BipartiteGraph, Vertex};
use mbb_bigraph::two_hop::n2_neighbors;
use mbb_core::biclique::Biclique;

use crate::common::{Deadline, RunOutcome};

struct MbeSearcher<'g> {
    graph: &'g BipartiteGraph,
    core: Vec<u32>,
    best: Biclique,
    best_half: usize,
    nodes: u64,
    deadline: Deadline,
    timed_out: bool,
}

impl MbeSearcher<'_> {
    fn record(&mut self, a: &[u32], b: &[u32]) {
        let half = a.len().min(b.len());
        if half > self.best_half {
            self.best_half = half;
            self.best = Biclique::balanced(a.to_vec(), b.to_vec());
        }
    }

    /// Expands left-set `a` with common neighbourhood `b` and left
    /// candidates `cand` (each strictly extending per the root order).
    fn expand(&mut self, a: &mut Vec<u32>, b: &[u32], cand: &[u32]) {
        self.nodes += 1;
        if self.timed_out || (self.nodes.is_multiple_of(1024) && self.deadline.expired()) {
            self.timed_out = true;
            return;
        }
        self.record(a, b);
        if (a.len() + cand.len()).min(b.len()) <= self.best_half {
            return;
        }

        // iMBEA-style ordering: try candidates keeping the largest common
        // neighbourhood first.
        let mut scored: Vec<(usize, u32)> = cand
            .iter()
            .map(|&u| {
                let n = self.graph.neighbors_left(u);
                (mbb_bigraph::graph::sorted_intersection_len(b, n), u)
            })
            .collect();
        scored.sort_by_key(|&(overlap, u)| (std::cmp::Reverse(overlap), u));

        for (i, &(overlap, u)) in scored.iter().enumerate() {
            // Core upper bound + incumbent bound on the shrunk B side.
            if overlap <= self.best_half || self.core[u as usize] as usize <= self.best_half {
                continue;
            }
            // The scoring pass already computed |b ∩ N(u)|, so the merge can
            // preallocate exactly and stop as soon as the last hit lands.
            let new_b = sorted_intersection_exact(b, self.graph.neighbors_left(u), overlap);
            let rest: Vec<u32> = scored[i + 1..]
                .iter()
                .map(|&(_, w)| w)
                .filter(|&w| self.core[w as usize] as usize > self.best_half)
                .collect();
            a.push(u);
            self.expand(a, &new_b, &rest);
            a.pop();
            if self.timed_out {
                return;
            }
        }
    }
}

fn make_searcher<'g>(
    graph: &'g BipartiteGraph,
    initial: Biclique,
    deadline: Deadline,
) -> MbeSearcher<'g> {
    let core = core_decomposition(graph).core;
    let best_half = initial.half_size();
    MbeSearcher {
        graph,
        core,
        best: initial,
        best_half,
        nodes: 0,
        deadline,
        timed_out: false,
    }
}

/// Adapted iMBEA: whole-graph left-rooted enumeration.
pub fn imbea_adapted(
    graph: &BipartiteGraph,
    initial: Biclique,
    budget: Option<Duration>,
) -> RunOutcome {
    let deadline = Deadline::new(budget);
    let mut searcher = make_searcher(graph, initial, deadline);
    let cand: Vec<u32> = (0..graph.num_left() as u32)
        .filter(|&u| searcher.core[u as usize] as usize > searcher.best_half)
        .collect();
    let b_all: Vec<u32> = (0..graph.num_right() as u32).collect();
    searcher.expand(&mut Vec::new(), &b_all, &cand);
    RunOutcome {
        biclique: searcher.best,
        timed_out: searcher.timed_out,
        nodes: searcher.nodes,
    }
}

/// Adapted FMBE: per-vertex 2-hop-scoped enumeration under a fixed order.
pub fn fmbe_adapted(
    graph: &BipartiteGraph,
    initial: Biclique,
    budget: Option<Duration>,
) -> RunOutcome {
    let deadline = Deadline::new(budget);
    let mut searcher = make_searcher(graph, initial, deadline);
    let nl = graph.num_left();

    // Fixed total order over left vertices: non-decreasing degree (peeled
    // roots first keeps later scopes small); each root only sees
    // later-ordered 2-hop neighbours, so bicliques are enumerated once.
    let mut roots: Vec<u32> = (0..nl as u32).collect();
    roots.sort_by_key(|&u| (graph.degree_left(u), u));
    let mut rank = vec![0u32; nl];
    for (i, &u) in roots.iter().enumerate() {
        rank[u as usize] = i as u32;
    }

    for (i, &root) in roots.iter().enumerate() {
        if searcher.timed_out {
            break;
        }
        if searcher.core[root as usize] as usize <= searcher.best_half {
            continue;
        }
        let b: Vec<u32> = graph.neighbors_left(root).to_vec();
        if b.len() <= searcher.best_half {
            continue;
        }
        // Scope: later 2-hop left neighbours only.
        let cand: Vec<u32> = n2_neighbors(graph, Vertex::left(root))
            .into_iter()
            .filter(|&w| {
                rank[w as usize] as usize > i
                    && searcher.core[w as usize] as usize > searcher.best_half
            })
            .collect();
        let mut a = vec![root];
        searcher.expand(&mut a, &b, &cand);
    }
    // Right-rooted single vertices are covered by left enumeration except
    // the degenerate 1x1 case on isolated edges; the incumbent from step 1
    // handles those (half ≥ 1 whenever an edge exists).
    RunOutcome {
        biclique: searcher.best,
        timed_out: searcher.timed_out,
        nodes: searcher.nodes,
    }
}

/// Left-side membership bitset helper (kept for future scope filters).
#[allow(dead_code)]
fn bitset_of(ids: &[u32], capacity: usize) -> BitSet {
    let mut s = BitSet::new(capacity);
    for &i in ids {
        s.insert(i as usize);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;
    use mbb_bigraph::graph::sorted_intersection;

    fn brute_half(graph: &BipartiteGraph) -> usize {
        let nl = graph.num_left();
        assert!(nl <= 16);
        let mut best = 0;
        for mask in 0u32..(1 << nl) {
            let mut common: Option<Vec<u32>> = None;
            let mut size = 0;
            for u in 0..nl as u32 {
                if mask >> u & 1 == 1 {
                    size += 1;
                    let n = graph.neighbors_left(u);
                    common = Some(match common {
                        None => n.to_vec(),
                        Some(c) => sorted_intersection(&c, n),
                    });
                }
            }
            best = best.max(size.min(common.map_or(0, |c| c.len())));
        }
        best
    }

    #[test]
    fn imbea_exact_on_random_graphs() {
        for seed in 0..12u64 {
            let g = generators::uniform_edges(10, 10, 45, seed);
            let out = imbea_adapted(&g, Biclique::empty(), None);
            assert!(!out.timed_out);
            assert_eq!(out.biclique.half_size(), brute_half(&g), "seed {seed}");
            assert!(out.biclique.is_valid(&g));
        }
    }

    #[test]
    fn fmbe_exact_on_random_graphs() {
        for seed in 0..12u64 {
            let g = generators::uniform_edges(10, 10, 45, seed);
            // FMBE relies on an initial incumbent for the 1x1 edge case.
            let seed_biclique = g
                .edges()
                .next()
                .map(|(u, v)| Biclique::balanced(vec![u], vec![v]))
                .unwrap_or_default();
            let out = fmbe_adapted(&g, seed_biclique, None);
            assert!(!out.timed_out);
            assert_eq!(out.biclique.half_size(), brute_half(&g), "seed {seed}");
            assert!(out.biclique.is_valid(&g));
        }
    }

    #[test]
    fn initial_incumbent_is_kept_when_optimal() {
        let g = generators::complete(4, 4);
        let opt = Biclique::balanced((0..4).collect(), (0..4).collect());
        let out = imbea_adapted(&g, opt.clone(), None);
        assert_eq!(out.biclique.half_size(), 4);
    }

    #[test]
    fn both_respect_timeouts() {
        let g = generators::dense_uniform(40, 40, 0.8, 2);
        let out = imbea_adapted(&g, Biclique::empty(), Some(Duration::from_millis(10)));
        assert!(out.timed_out || out.biclique.half_size() > 0);
        let out = fmbe_adapted(&g, Biclique::empty(), Some(Duration::from_millis(10)));
        assert!(out.timed_out || out.biclique.half_size() > 0);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        assert_eq!(
            imbea_adapted(&g, Biclique::empty(), None)
                .biclique
                .half_size(),
            0
        );
        assert_eq!(
            fmbe_adapted(&g, Biclique::empty(), None)
                .biclique
                .half_size(),
            0
        );
    }
}
