//! Shared plumbing for the baseline algorithms: run outcomes, deadlines.

use std::time::{Duration, Instant};

use mbb_core::biclique::Biclique;

/// Outcome of a baseline run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Best balanced biclique found (optimal unless `timed_out`).
    pub biclique: Biclique,
    /// True when the time budget expired before the search finished; the
    /// biclique is then only a lower bound (the paper reports these runs
    /// as `-`).
    pub timed_out: bool,
    /// Search-tree nodes explored.
    pub nodes: u64,
}

/// A cooperative deadline checked inside search loops.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    end: Option<Instant>,
}

impl Deadline {
    /// A deadline `budget` from now; `None` = unlimited.
    pub fn new(budget: Option<Duration>) -> Deadline {
        Deadline {
            end: budget.map(|b| Instant::now() + b),
        }
    }

    /// No deadline.
    pub fn unlimited() -> Deadline {
        Deadline { end: None }
    }

    /// True once the budget is exhausted.
    #[inline]
    pub fn expired(&self) -> bool {
        self.end.is_some_and(|e| Instant::now() >= e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let d = Deadline::unlimited();
        assert!(!d.expired());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::new(Some(Duration::from_secs(0)));
        assert!(d.expired());
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let d = Deadline::new(Some(Duration::from_secs(3600)));
        assert!(!d.expired());
    }
}
