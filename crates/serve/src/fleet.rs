//! The sharded engine fleet: one warm [`MbbEngine`] session per graph
//! shard, with deterministic request routing and hot engine swaps.
//!
//! Engine slots are interior-mutable: [`ShardedFleet::reload_shard_from_store`]
//! swaps a shard's session for a freshly loaded graph through a shared
//! reference, so a resident server (see [`crate::stream`]) can reload a
//! shard while workers execute against it. Callers hold `Arc` clones of
//! the session they are using, so in-flight queries always finish on the
//! engine they started on; only queries admitted after the swap see the
//! new graph.

use std::sync::Arc;

// Engine-slot synchronisation goes through the mbb-conc facade so the
// reload path can be model-checked under `--cfg mbb_conc` (see
// docs/CONCURRENCY.md).
use mbb_conc::sync::atomic::{AtomicU64, Ordering};
use mbb_conc::sync::RwLock;

use mbb_bigraph::graph::BipartiteGraph;
use mbb_core::engine::MbbEngine;
use mbb_core::stats::IndexStats;
use mbb_core::SolverConfig;

use crate::request::QueryRequest;

/// Service-level errors: routing failures, malformed requests, fleet
/// misconfiguration. Execution-level problems (a deadline expiring, a
/// query finding nothing) are **not** errors — they are typed results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The fleet has no shards; nothing can be routed.
    EmptyFleet,
    /// A request named a graph id no shard carries.
    UnknownShard(String),
    /// Two shards were registered under the same graph id.
    DuplicateShard(String),
    /// A JSONL request line failed to parse or validate. `line` is
    /// 1-based.
    BadRequest {
        /// 1-based line number in the request stream.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A store-resolved shard failed to load (flattened to a message so
    /// the error stays `Clone + Eq`).
    ShardLoad {
        /// The name or path as handed to the store.
        source: String,
        /// The underlying `StoreError`, rendered.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::EmptyFleet => write!(f, "the fleet has no shards"),
            ServeError::UnknownShard(id) => write!(f, "unknown shard {id:?}"),
            ServeError::DuplicateShard(id) => write!(f, "duplicate shard {id:?}"),
            ServeError::BadRequest { line, message } => {
                write!(f, "request line {line}: {message}")
            }
            ServeError::ShardLoad { source, message } => {
                write!(f, "shard {source}: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One shard: a graph id and the warm engine session serving it. The
/// session slot is swappable ([`ShardedFleet::reload_shard_from_store`]);
/// callers get an `Arc` clone of whatever session is current, so a swap
/// never invalidates a session already handed out.
#[derive(Debug)]
pub struct Shard {
    id: String,
    engine: RwLock<Arc<MbbEngine>>,
    reloads: AtomicU64,
}

impl Shard {
    /// The shard's graph id (the routing key requests name).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The shard's current engine session (an `Arc` clone — keep it for
    /// the duration of one query and it survives a concurrent reload).
    pub fn engine(&self) -> Arc<MbbEngine> {
        Arc::clone(&self.engine.read())
    }

    /// How many times this shard's engine has been swapped since
    /// registration.
    pub fn reloads(&self) -> u64 {
        // relaxed: monotonic event counter read for reporting only; no
        // other memory is ordered against it.
        self.reloads.load(Ordering::Relaxed)
    }
}

/// A fixed set of graph shards, each served by one persistent
/// [`MbbEngine`] session, with deterministic routing from requests to
/// shards. The fleet is the state a [`BatchExecutor`](crate::BatchExecutor)
/// schedules over; it can also be queried directly (each engine is
/// `Sync`).
///
/// Routing is two-level and deterministic:
///
/// * a request with a `graph` id goes to the shard registered under
///   exactly that id (unknown ids are [`ServeError::UnknownShard`]);
/// * a request without one is assigned by FNV-1a hashing its request id
///   — stable across runs and across fleets with the same shard count.
///
/// ```
/// use mbb_serve::{QueryKind, QueryRequest, ShardedFleet};
///
/// let mut fleet = ShardedFleet::new();
/// fleet
///     .add_shard("a", mbb_bigraph::generators::uniform_edges(10, 10, 40, 1))?
///     .add_shard("b", mbb_bigraph::generators::uniform_edges(12, 12, 50, 2))?;
/// assert_eq!(fleet.len(), 2);
///
/// // Explicit routing by graph id…
/// let explicit = QueryRequest::new(1, QueryKind::Solve).on_graph("b");
/// assert_eq!(fleet.route(&explicit)?, 1);
/// // …and deterministic hash routing without one.
/// let hashed = QueryRequest::new(1, QueryKind::Solve);
/// assert_eq!(fleet.route(&hashed)?, fleet.route(&hashed)?);
/// # Ok::<(), mbb_serve::ServeError>(())
/// ```
#[derive(Debug, Default)]
pub struct ShardedFleet {
    shards: Vec<Shard>,
}

impl ShardedFleet {
    /// An empty fleet; add shards before routing anything.
    pub fn new() -> ShardedFleet {
        ShardedFleet::default()
    }

    /// Registers a shard with the default solver configuration. Returns
    /// `&mut self` so registrations chain.
    pub fn add_shard(
        &mut self,
        id: impl Into<String>,
        graph: BipartiteGraph,
    ) -> Result<&mut Self, ServeError> {
        self.add_engine(id, MbbEngine::new(graph))
    }

    /// Registers a shard with an explicit solver configuration.
    pub fn add_shard_with_config(
        &mut self,
        id: impl Into<String>,
        graph: BipartiteGraph,
        config: SolverConfig,
    ) -> Result<&mut Self, ServeError> {
        self.add_engine(id, MbbEngine::with_config(graph, config))
    }

    /// Registers a shard by resolving a name or path through a
    /// [`GraphStore`](mbb_store::GraphStore): warm `.mbbg` caches load
    /// without re-parsing, cold sources are parsed (and cached, per the
    /// store's mode). Returns the load provenance so callers can report
    /// how each shard came up.
    ///
    /// ```no_run
    /// use mbb_serve::ShardedFleet;
    /// use mbb_store::GraphStore;
    ///
    /// let store = GraphStore::new();
    /// let mut fleet = ShardedFleet::new();
    /// let loaded = fleet.add_shard_from_store("a", &store, "data/github.txt")?;
    /// println!("shard a: {}", loaded.describe());
    /// # Ok::<(), mbb_serve::ServeError>(())
    /// ```
    pub fn add_shard_from_store(
        &mut self,
        id: impl Into<String>,
        store: &mbb_store::GraphStore,
        source: &str,
    ) -> Result<mbb_store::LoadedGraph, ServeError> {
        let loaded = store.load(source).map_err(|e| ServeError::ShardLoad {
            source: source.to_string(),
            message: e.to_string(),
        })?;
        let engine = MbbEngine::from_arc(loaded.graph.clone(), SolverConfig::default());
        self.add_engine(id, engine)?;
        Ok(loaded)
    }

    /// Registers an already-built engine session as a shard — the path
    /// for pre-warmed engines or [`MbbEngine::fork`]s.
    pub fn add_engine(
        &mut self,
        id: impl Into<String>,
        engine: MbbEngine,
    ) -> Result<&mut Self, ServeError> {
        let id = id.into();
        if self.shards.iter().any(|s| s.id == id) {
            return Err(ServeError::DuplicateShard(id));
        }
        self.shards.push(Shard {
            id,
            engine: RwLock::new(Arc::new(engine)),
            reloads: AtomicU64::new(0),
        });
        Ok(self)
    }

    /// Swaps shard `id`'s engine session for `engine`, returning the
    /// shard index. In-flight queries holding the old `Arc` finish on the
    /// old session; queries that fetch the engine after the swap get the
    /// new one. This is the primitive under
    /// [`reload_shard_from_store`](Self::reload_shard_from_store).
    pub fn reload_engine(&self, id: &str, engine: MbbEngine) -> Result<usize, ServeError> {
        let index = self.route_id(id)?;
        *self.shards[index].engine.write() = Arc::new(engine);
        // relaxed: monotonic event counter; the swap itself synchronises
        // through the RwLock above.
        self.shards[index].reloads.fetch_add(1, Ordering::Relaxed);
        Ok(index)
    }

    /// Reloads shard `id` from a store-resolved `source` without dropping
    /// in-flight queries: the new graph is loaded (warm `.mbbg` caches
    /// apply), a fresh session is built for it, and the shard's engine
    /// slot is swapped atomically.
    ///
    /// When the loaded graph is byte-identical to the one already being
    /// served (a reload of an unchanged source), the new session is a
    /// [`MbbEngine::fork`] of the current one instead — the swap then
    /// costs no index recomputation at all. The returned flag says which
    /// path was taken (`true` = warm fork).
    pub fn reload_shard_from_store(
        &self,
        id: &str,
        store: &mbb_store::GraphStore,
        source: &str,
    ) -> Result<(mbb_store::LoadedGraph, bool), ServeError> {
        let index = self.route_id(id)?;
        let loaded = store.load(source).map_err(|e| ServeError::ShardLoad {
            source: source.to_string(),
            message: e.to_string(),
        })?;
        let current = self.shards[index].engine();
        let forked = loaded.matches(current.graph());
        let engine = if forked {
            current.fork()
        } else {
            MbbEngine::from_arc(loaded.graph.clone(), *current.config())
        };
        *self.shards[index].engine.write() = Arc::new(engine);
        // relaxed: monotonic event counter; the swap itself synchronises
        // through the RwLock above.
        self.shards[index].reloads.fetch_add(1, Ordering::Relaxed);
        Ok((loaded, forked))
    }

    /// Total engine swaps across all shards since fleet construction.
    pub fn total_reloads(&self) -> u64 {
        self.shards.iter().map(Shard::reloads).sum()
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no shard is registered.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shards, in registration order (the order shard indices refer
    /// to).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The current engine of shard `index` (an `Arc` clone — see
    /// [`Shard::engine`] for the reload semantics).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn engine(&self, index: usize) -> Arc<MbbEngine> {
        self.shards[index].engine()
    }

    /// Resolves a graph id to its shard index.
    pub fn route_id(&self, graph_id: &str) -> Result<usize, ServeError> {
        if self.shards.is_empty() {
            return Err(ServeError::EmptyFleet);
        }
        self.shards
            .iter()
            .position(|s| s.id == graph_id)
            .ok_or_else(|| ServeError::UnknownShard(graph_id.to_string()))
    }

    /// Deterministically assigns an arbitrary routing key to a shard:
    /// 64-bit FNV-1a of the key, modulo the shard count. Stable across
    /// runs, processes and fleets with equal shard counts.
    pub fn route_key(&self, key: &str) -> Result<usize, ServeError> {
        if self.shards.is_empty() {
            return Err(ServeError::EmptyFleet);
        }
        Ok((fnv1a(key.as_bytes()) % self.shards.len() as u64) as usize)
    }

    /// Routes a request: by its `graph` id when present, else by hashing
    /// its request id ([`route_key`](Self::route_key) of the decimal
    /// id).
    pub fn route(&self, request: &QueryRequest) -> Result<usize, ServeError> {
        match &request.graph {
            Some(id) => self.route_id(id),
            None => self.route_key(&request.id.to_string()),
        }
    }

    /// Per-shard snapshot of the engines' cumulative index-reuse
    /// counters, in shard order. Batch reports diff two snapshots to
    /// attribute reuse to one batch.
    pub fn index_stats(&self) -> Vec<IndexStats> {
        self.shards
            .iter()
            .map(|s| s.engine().index_stats())
            .collect()
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, and stable, which is all the
/// routing hash needs (this is placement, not security).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::QueryKind;
    use mbb_bigraph::generators;

    fn two_shards() -> ShardedFleet {
        let mut fleet = ShardedFleet::new();
        fleet
            .add_shard("a", generators::uniform_edges(8, 8, 30, 1))
            .unwrap()
            .add_shard("b", generators::uniform_edges(8, 8, 30, 2))
            .unwrap();
        fleet
    }

    #[test]
    fn explicit_routing_is_exact() {
        let fleet = two_shards();
        assert_eq!(fleet.route_id("a").unwrap(), 0);
        assert_eq!(fleet.route_id("b").unwrap(), 1);
        assert_eq!(
            fleet.route_id("c"),
            Err(ServeError::UnknownShard("c".into()))
        );
    }

    #[test]
    fn hash_routing_is_deterministic_and_total() {
        let fleet = two_shards();
        for id in 0..50u64 {
            let request = QueryRequest::new(id, QueryKind::Solve);
            let first = fleet.route(&request).unwrap();
            assert_eq!(fleet.route(&request).unwrap(), first);
            assert!(first < fleet.len());
        }
        // Both shards receive some hash-routed traffic.
        let hits: std::collections::HashSet<usize> = (0..50u64)
            .map(|id| {
                fleet
                    .route(&QueryRequest::new(id, QueryKind::Solve))
                    .unwrap()
            })
            .collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn duplicate_and_empty_are_errors() {
        let mut fleet = two_shards();
        assert_eq!(
            fleet
                .add_shard("a", generators::uniform_edges(4, 4, 8, 3))
                .err(),
            Some(ServeError::DuplicateShard("a".into()))
        );
        let empty = ShardedFleet::new();
        assert_eq!(empty.route_id("a"), Err(ServeError::EmptyFleet));
        assert_eq!(empty.route_key("a"), Err(ServeError::EmptyFleet));
    }

    #[test]
    fn store_resolved_shards_load_and_route() {
        let dir = std::env::temp_dir().join(format!("mbb-fleet-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.txt");
        mbb_bigraph::io::write_edge_list_file(&generators::uniform_edges(6, 6, 20, 4), &path)
            .unwrap();
        let store = mbb_store::GraphStore::new();
        let mut fleet = ShardedFleet::new();
        let cold = fleet
            .add_shard_from_store("s", &store, path.to_str().unwrap())
            .unwrap();
        assert!(!cold.provenance.is_cache_hit());
        assert_eq!(fleet.route_id("s").unwrap(), 0);
        // A second fleet over the same source comes up from the cache.
        let mut warm_fleet = ShardedFleet::new();
        let warm = warm_fleet
            .add_shard_from_store("s", &store, path.to_str().unwrap())
            .unwrap();
        assert!(warm.provenance.is_cache_hit());
        assert_eq!(
            warm_fleet.engine(0).graph().num_edges(),
            fleet.engine(0).graph().num_edges()
        );
        // Unresolvable sources surface as ShardLoad.
        assert!(matches!(
            fleet.add_shard_from_store("t", &store, "no-such-file.txt"),
            Err(ServeError::ShardLoad { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_swaps_engine_but_not_sessions_already_held() {
        let dir = std::env::temp_dir().join(format!("mbb-fleet-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old_graph = generators::uniform_edges(8, 8, 30, 1);
        let new_graph = generators::uniform_edges(12, 12, 60, 2);
        let path = dir.join("next.txt");
        mbb_bigraph::io::write_edge_list_file(&new_graph, &path).unwrap();

        let mut fleet = ShardedFleet::new();
        fleet.add_shard("a", old_graph.clone()).unwrap();
        let held = fleet.engine(0); // a session in flight across the swap

        let store = mbb_store::GraphStore::new();
        let (loaded, forked) = fleet
            .reload_shard_from_store("a", &store, path.to_str().unwrap())
            .unwrap();
        assert!(!forked, "different graph must build a fresh session");
        assert_eq!(loaded.graph.num_edges(), new_graph.num_edges());
        // The held session still serves the old graph; new fetches see
        // the new one.
        assert_eq!(held.graph().num_edges(), old_graph.num_edges());
        assert_eq!(fleet.engine(0).graph().num_edges(), new_graph.num_edges());
        assert_eq!(fleet.shards()[0].reloads(), 1);
        assert_eq!(fleet.total_reloads(), 1);

        // Reloading the unchanged source forks the warm session instead.
        let warm = fleet.engine(0);
        warm.solve(); // warm the order cache
        let (_, forked) = fleet
            .reload_shard_from_store("a", &store, path.to_str().unwrap())
            .unwrap();
        assert!(forked, "identical graph must fork the warm session");
        let again = fleet.engine(0).solve();
        assert_eq!(again.stats.index.orders_computed, 0);
        assert!(again.stats.index.orders_reused >= 1);

        // Unknown shards and unloadable sources are typed errors.
        assert!(matches!(
            fleet.reload_shard_from_store("zz", &store, path.to_str().unwrap()),
            Err(ServeError::UnknownShard(_))
        ));
        assert!(matches!(
            fleet.reload_shard_from_store("a", &store, "no-such.txt"),
            Err(ServeError::ShardLoad { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ServeError::UnknownShard("x".into())
            .to_string()
            .contains("x"));
        assert!(ServeError::BadRequest {
            line: 3,
            message: "no kind".into()
        }
        .to_string()
        .contains("line 3"));
    }
}
