//! `mbb-serve` — the batched, sharded query service front-end over
//! [`MbbEngine`](mbb_core::engine::MbbEngine) sessions.
//!
//! `mbb-core` answers one query at a time against one graph. A service
//! answering heavy traffic wants three more layers, and this crate is
//! exactly those three:
//!
//! * a [`ShardedFleet`] — N persistent engine sessions, one per graph
//!   shard, with deterministic request routing by graph id (exact) or
//!   request id (FNV-1a hash);
//! * a [`BatchExecutor`] — a persistent worker pool that takes a
//!   `Vec<`[`QueryRequest`]`>` (any of the nine query kinds as a typed
//!   enum), schedules deadline-soonest first, runs every request with
//!   its own budget, and returns a consolidated [`BatchReport`]
//!   (per-request [`QueryResponse`]s in request order + fleet-level
//!   stats: index-reuse hits, queue wait, per-shard node counts);
//! * a [`jsonl`] wire layer — requests in, responses out, one JSON
//!   object per line — shared by the `mbb serve-batch` CLI subcommand
//!   and any embedding service.
//!
//! On top of the batch path sits **resident mode** ([`stream`]): a
//! [`StreamServer`] runs a long-lived loop over a
//! JSONL request *stream* with a global cross-batch EDF admission queue
//! — bounded depth with backpressure, load-shedding of blown-budget
//! requests, per-tenant fairness, and graceful drain/reload via control
//! lines (`mbb serve` on the CLI). Behind the `socket` cargo feature,
//! the `socket` module exposes the same loop over a multiplexed TCP /
//! Unix-domain listener: N concurrent JSONL connections fan into the
//! one shared admission queue, and responses are routed back to the
//! originating connection by a [`mux`] registry.
//!
//! The semantics (fairness, deadlines that include queue wait, the
//! amortisation argument, the resident wire schema) are documented in
//! `docs/SERVING.md`.
//!
//! # Quickstart
//!
//! ```
//! use std::time::Duration;
//! use mbb_serve::{BatchExecutor, QueryKind, QueryOutcome, QueryRequest, ShardedFleet};
//!
//! // Two graph shards, one engine session each.
//! let mut fleet = ShardedFleet::new();
//! fleet
//!     .add_shard("users", mbb_bigraph::generators::uniform_edges(20, 20, 90, 1))?
//!     .add_shard("items", mbb_bigraph::generators::uniform_edges(20, 20, 90, 2))?;
//!
//! // A persistent pool: build once, run many batches.
//! let executor = BatchExecutor::new(fleet, 2);
//! let report = executor.run_batch(vec![
//!     QueryRequest::new(0, QueryKind::Solve).on_graph("users"),
//!     QueryRequest::new(1, QueryKind::Topk { k: 3 }).on_graph("users"),
//!     QueryRequest::new(2, QueryKind::Frontier)
//!         .on_graph("items")
//!         .with_deadline(Duration::from_secs(5)),
//!     QueryRequest::new(3, QueryKind::Solve).on_graph("users"),
//! ]);
//!
//! assert_eq!(report.responses.len(), 4);
//! let solve = &report.responses[0];
//! assert!(solve.termination.is_complete());
//! if let QueryOutcome::Solve(biclique) = &solve.outcome {
//!     assert!(biclique.is_valid(executor.fleet().engine(0).graph()));
//! }
//! // Requests 0 and 1 shared the "users" session's cached indices.
//! assert!(report.stats.index_reuse_hits >= 1);
//! # Ok::<(), mbb_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod fleet;
pub mod jsonl;
pub mod mux;
pub mod request;
#[cfg(feature = "socket")]
pub mod socket;
pub mod stream;

pub use batch::{BatchExecutor, BatchReport, BatchStats, ShardBatchStats};
pub use fleet::{ServeError, Shard, ShardedFleet};
pub use request::{QueryKind, QueryOutcome, QueryRequest, QueryResponse};
pub use stream::{ServeStats, ShardServeStats, StreamConfig, StreamEvent, StreamServer};
