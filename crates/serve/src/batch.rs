//! The batch executor: a persistent worker pool running typed query
//! batches over a [`ShardedFleet`] with deadline-soonest-first
//! scheduling.
//!
//! # Scheduling model
//!
//! One global priority queue feeds all workers. A request's priority is
//! its **absolute deadline** (batch submission instant + its
//! [`QueryRequest::deadline`]): the queue pops the soonest deadline
//! first, ties broken by submission order, and requests without a
//! deadline run after every deadlined one, in submission order. This is
//! earliest-deadline-first, the fairness policy that minimises deadline
//! misses when queries are short relative to their budgets; because the
//! deadline clock starts at submission, queue wait counts against the
//! budget and an overloaded batch degrades to best-so-far answers
//! ([`Termination::DeadlineExceeded`]) instead of unbounded latency.
//!
//! # What a batch amortises
//!
//! All requests routed to one shard share that shard's engine session:
//! the first query pays for the cached indices (peel order, bicore
//! decomposition, two-hop index) and every later one reuses them. The
//! [`BatchReport`] surfaces exactly that — per-shard index-reuse hits,
//! queue-wait and search-node totals — so a service can see the
//! amortisation it is getting.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mbb_bigraph::graph::Side;
use mbb_core::budget::Termination;
use mbb_core::engine::MbbEngine;
use mbb_core::enumerate::EnumConfig;
use mbb_core::resolve_threads;
use mbb_core::stats::SolveStats;

use crate::fleet::ShardedFleet;
use crate::request::{QueryKind, QueryOutcome, QueryRequest, QueryResponse};

// ---------------------------------------------------------------------
// Worker pool plumbing.

/// A scheduled unit of work: one routed request plus its batch handle.
struct Job {
    /// Absolute deadline (= priority; `None` schedules last).
    deadline: Option<Instant>,
    /// Position in the submitted batch (response slot + FIFO tie-break).
    seq: usize,
    request: QueryRequest,
    shard: usize,
    submitted: Instant,
    batch: Arc<BatchState>,
}

impl PartialEq for Job {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Job {}

impl PartialOrd for Job {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Job {
    /// Max-heap order: "greater" = scheduled sooner. Soonest deadline
    /// wins; `None` deadlines run after every armed one; ties fall back
    /// to submission order.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.deadline, other.deadline) {
            (Some(a), Some(b)) => b.cmp(&a),
            (Some(_), None) => Ordering::Greater,
            (None, Some(_)) => Ordering::Less,
            (None, None) => Ordering::Equal,
        }
        .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The queue shared by the workers.
struct PoolShared {
    queue: Mutex<PoolQueue>,
    available: Condvar,
}

struct PoolQueue {
    jobs: BinaryHeap<Job>,
    shutdown: bool,
}

/// Per-batch completion state: one response slot per request plus a
/// countdown the submitting thread waits on.
struct BatchState {
    slots: Mutex<BatchSlots>,
    done: Condvar,
}

struct BatchSlots {
    responses: Vec<Option<QueryResponse>>,
    remaining: usize,
}

impl BatchState {
    fn new(n: usize) -> BatchState {
        BatchState {
            slots: Mutex::new(BatchSlots {
                responses: (0..n).map(|_| None).collect(),
                remaining: n,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, seq: usize, response: QueryResponse) {
        let mut slots = self.slots.lock().unwrap();
        debug_assert!(slots.responses[seq].is_none(), "slot {seq} filled twice");
        slots.responses[seq] = Some(response);
        slots.remaining -= 1;
        if slots.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Vec<QueryResponse> {
        let mut slots = self.slots.lock().unwrap();
        while slots.remaining > 0 {
            slots = self.done.wait(slots).unwrap();
        }
        slots
            .responses
            .drain(..)
            .map(|slot| slot.expect("all slots filled when remaining == 0"))
            .collect()
    }
}

// ---------------------------------------------------------------------
// The executor.

/// A persistent worker pool executing [`QueryRequest`] batches against a
/// [`ShardedFleet`]. Workers are spawned once at construction and reused
/// by every [`run_batch`](Self::run_batch) call; dropping the executor
/// drains outstanding work and joins them.
///
/// ```
/// use mbb_serve::{BatchExecutor, QueryKind, QueryRequest, ShardedFleet};
///
/// let mut fleet = ShardedFleet::new();
/// fleet
///     .add_shard("west", mbb_bigraph::generators::uniform_edges(15, 15, 70, 3))?
///     .add_shard("east", mbb_bigraph::generators::uniform_edges(15, 15, 70, 4))?;
/// let executor = BatchExecutor::new(fleet, 2);
///
/// let report = executor.run_batch(vec![
///     QueryRequest::new(0, QueryKind::Solve).on_graph("west"),
///     QueryRequest::new(1, QueryKind::Topk { k: 2 }).on_graph("east"),
///     QueryRequest::new(2, QueryKind::Frontier), // hash-routed
/// ]);
/// assert_eq!(report.responses.len(), 3);
/// assert!(report.responses.iter().all(|r| r.termination.is_complete()));
/// # Ok::<(), mbb_serve::ServeError>(())
/// ```
#[derive(Debug)]
pub struct BatchExecutor {
    fleet: Arc<ShardedFleet>,
    shared: Arc<PoolShared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl BatchExecutor {
    /// Spawns a pool of `workers` threads over `fleet` (`0` = one per
    /// available core, the workspace-wide thread-knob convention).
    pub fn new(fleet: ShardedFleet, workers: usize) -> BatchExecutor {
        let fleet = Arc::new(fleet);
        let workers = resolve_threads(workers);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: BinaryHeap::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let fleet = Arc::clone(&fleet);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&fleet, &shared))
            })
            .collect();
        BatchExecutor {
            fleet,
            shared,
            workers,
            handles,
        }
    }

    /// The fleet this executor schedules over.
    pub fn fleet(&self) -> &ShardedFleet {
        &self.fleet
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one batch to completion: routes and validates every request,
    /// enqueues the valid ones deadline-soonest first, and blocks until
    /// all responses are in. Responses come back **in request order**
    /// regardless of execution order; requests that fail routing or
    /// validation come back as [`QueryOutcome::Rejected`] without
    /// touching an engine.
    ///
    /// The report's index-reuse and node counters are diffs of the fleet
    /// counters across this call, so they attribute correctly only when
    /// batches on one fleet run one at a time (concurrent `run_batch`
    /// calls are safe — responses never mix — but those counters would
    /// blend).
    pub fn run_batch(&self, requests: Vec<QueryRequest>) -> BatchReport {
        let submitted = Instant::now();
        let before = self.fleet.index_stats();
        let batch = Arc::new(BatchState::new(requests.len()));
        let total = requests.len();
        {
            let mut queue = self.shared.queue.lock().unwrap();
            for (seq, request) in requests.into_iter().enumerate() {
                let shard = match self.fleet.route(&request) {
                    Ok(shard) => shard,
                    // Routing itself failed: no shard to attribute to.
                    Err(e) => {
                        batch.complete(seq, rejected(&request, None, e.to_string()));
                        continue;
                    }
                };
                if let Err(reason) = validate(self.fleet.engine(shard).graph(), &request) {
                    let shard_id = self.fleet.shards()[shard].id().to_string();
                    batch.complete(seq, rejected(&request, Some(shard_id), reason));
                    continue;
                }
                queue.jobs.push(Job {
                    deadline: request.deadline.map(|d| submitted + d),
                    seq,
                    request,
                    shard,
                    submitted,
                    batch: Arc::clone(&batch),
                });
            }
        }
        self.shared.available.notify_all();
        let responses = batch.wait();
        BatchReport::assemble(&self.fleet, responses, total, before, submitted.elapsed())
    }
}

impl Drop for BatchExecutor {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(fleet: &ShardedFleet, shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.jobs.pop() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        run_job(fleet, job);
    }
}

/// A routed request may not ask for more worker threads than this. The
/// engine takes non-zero thread counts literally (`0` = one per core is
/// fine), so an unchecked wire value could ask a serving endpoint to
/// spawn millions of OS threads.
pub const MAX_REQUEST_THREADS: usize = 256;

/// A `topk` request may not ask for more than this many results. The
/// ranker pre-allocates a heap of `k + 1` entries, so an unchecked wire
/// value would turn one request line into a multi-gigabyte allocation
/// (and allocation failure aborts, which `catch_unwind` cannot contain).
pub const MAX_REQUEST_TOPK: usize = 100_000;

/// The parameter checks that would otherwise panic inside the engine
/// (anchors out of range, mismatched weight vectors) or abuse the host
/// (absurd thread counts, allocation-sized `k`). Shared with the
/// resident stream loop, which applies the same admission validation.
pub(crate) fn validate(
    graph: &mbb_bigraph::graph::BipartiteGraph,
    request: &QueryRequest,
) -> Result<(), String> {
    if request.threads.is_some_and(|t| t > MAX_REQUEST_THREADS) {
        return Err(format!(
            "threads: at most {MAX_REQUEST_THREADS} per request (0 = one per core)"
        ));
    }
    match &request.kind {
        QueryKind::Topk { k } if *k == 0 => Err("topk: k must be positive".into()),
        QueryKind::Topk { k } if *k > MAX_REQUEST_TOPK => {
            Err(format!("topk: k at most {MAX_REQUEST_TOPK} per request"))
        }
        QueryKind::Anchored { vertex } => {
            let bound = match vertex.side {
                Side::Left => graph.num_left(),
                Side::Right => graph.num_right(),
            };
            if vertex.index as usize >= bound {
                return Err(format!(
                    "anchored: vertex index {} out of range (side has {bound})",
                    vertex.index
                ));
            }
            Ok(())
        }
        QueryKind::AnchoredEdge { u, v }
            if *u as usize >= graph.num_left() || *v as usize >= graph.num_right() =>
        {
            Err(format!(
                "anchored_edge: ({u}, {v}) out of range for {}x{} graph",
                graph.num_left(),
                graph.num_right()
            ))
        }
        QueryKind::Weighted { weights } if weights.len() != graph.num_vertices() => Err(format!(
            "weighted: {} weights for {} vertices",
            weights.len(),
            graph.num_vertices()
        )),
        _ => Ok(()),
    }
}

/// `shard` is the routed shard's id for validation failures, `None`
/// when routing itself failed (matching `QueryResponse::shard`'s
/// contract — never the unroutable graph id the request named).
pub(crate) fn rejected(
    request: &QueryRequest,
    shard: Option<String>,
    reason: String,
) -> QueryResponse {
    QueryResponse {
        id: request.id,
        shard,
        kind: request.kind.label(),
        outcome: QueryOutcome::Rejected { reason },
        termination: Termination::Complete,
        queue_wait: Duration::ZERO,
        service: Duration::ZERO,
        stats: SolveStats::default(),
    }
}

fn run_job(fleet: &ShardedFleet, job: Job) {
    let started = Instant::now();
    let queue_wait = started.duration_since(job.submitted);
    let engine = fleet.engine(job.shard);
    let shard_id = fleet.shards()[job.shard].id().to_string();
    let request = &job.request;

    let (outcome, termination, stats) = execute_guarded(&engine, request, job.deadline);
    job.batch.complete(
        job.seq,
        QueryResponse {
            id: request.id,
            shard: Some(shard_id),
            kind: request.kind.label(),
            outcome,
            termination,
            queue_wait,
            service: started.elapsed(),
            stats,
        },
    );
}

/// [`execute`] behind a panic guard: a panicking query must not wedge
/// the batch (or kill a resident server's worker) — it is reported as a
/// rejection and the worker keeps draining the queue. Shared by the
/// batch executor and the resident stream loop.
pub(crate) fn execute_guarded(
    engine: &MbbEngine,
    request: &QueryRequest,
    deadline: Option<Instant>,
) -> (QueryOutcome, Termination, SolveStats) {
    match catch_unwind(AssertUnwindSafe(|| execute(engine, request, deadline))) {
        Ok(result) => result,
        Err(panic) => {
            let reason = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "query panicked".to_string());
            (
                QueryOutcome::Rejected {
                    reason: format!("query panicked: {reason}"),
                },
                Termination::Complete,
                SolveStats::default(),
            )
        }
    }
}

/// Dispatches one request on one engine session.
fn execute(
    engine: &MbbEngine,
    request: &QueryRequest,
    deadline: Option<Instant>,
) -> (QueryOutcome, Termination, SolveStats) {
    let builder = || {
        let mut q = engine.query();
        if let Some(at) = deadline {
            q = q.deadline_at(at);
        }
        if let Some(threads) = request.threads {
            q = q.threads(threads);
        }
        if let Some(token) = &request.cancel {
            q = q.cancel_token(token.clone());
        }
        q
    };
    match &request.kind {
        QueryKind::Solve => {
            let r = builder().solve();
            (QueryOutcome::Solve(r.value), r.termination, r.stats)
        }
        QueryKind::Topk { k } => {
            let r = builder().topk(*k);
            (QueryOutcome::Topk(r.value), r.termination, r.stats)
        }
        QueryKind::Anchored { vertex } => {
            let r = builder().anchored(*vertex);
            (QueryOutcome::Anchored(r.value), r.termination, r.stats)
        }
        QueryKind::AnchoredEdge { u, v } => {
            let r = builder().anchored_edge(*u, *v);
            (QueryOutcome::AnchoredEdge(r.value), r.termination, r.stats)
        }
        QueryKind::Weighted { weights } => {
            let r = builder().weighted(weights);
            (QueryOutcome::Weighted(r.value), r.termination, r.stats)
        }
        QueryKind::Meb => {
            let r = builder().meb();
            (QueryOutcome::Meb(r.value), r.termination, r.stats)
        }
        QueryKind::Frontier => {
            let r = builder().frontier();
            (QueryOutcome::Frontier(r.value), r.termination, r.stats)
        }
        QueryKind::SizeConstrained { a, b } => {
            let r = builder().size_constrained(*a, *b);
            (
                QueryOutcome::SizeConstrained(r.value),
                r.termination,
                r.stats,
            )
        }
        QueryKind::Enumerate {
            min_left,
            min_right,
            max_results,
        } => {
            let config = EnumConfig {
                min_left: *min_left,
                min_right: *min_right,
                max_results: *max_results,
                budget: None,
            };
            let r = builder().enumerate(config);
            (QueryOutcome::Enumerate(r.value), r.termination, r.stats)
        }
    }
}

// ---------------------------------------------------------------------
// The consolidated report.

/// Per-shard slice of a [`BatchReport`].
#[derive(Debug, Clone)]
pub struct ShardBatchStats {
    /// The shard's graph id.
    pub shard: String,
    /// Requests this shard served in the batch.
    pub requests: usize,
    /// Search nodes explored by those requests.
    pub search_nodes: u64,
    /// Cached-index reuse hits (order + bicore + two-hop) this batch
    /// scored on this shard's engine session.
    pub index_reuse_hits: u64,
}

/// Fleet-level aggregates of one batch.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Requests submitted.
    pub requests: usize,
    /// Requests rejected before execution (routing/validation).
    pub rejected: usize,
    /// Wall-clock time from submission to the last response.
    pub wall_clock: Duration,
    /// Sum of per-request queue waits.
    pub total_queue_wait: Duration,
    /// The worst single queue wait.
    pub max_queue_wait: Duration,
    /// Sum of per-request service times (> `wall_clock` means the pool
    /// actually overlapped work).
    pub total_service: Duration,
    /// Cached-index reuse hits across all shards (see
    /// [`ShardBatchStats::index_reuse_hits`]).
    pub index_reuse_hits: u64,
    /// Per-shard breakdown, in fleet shard order.
    pub per_shard: Vec<ShardBatchStats>,
}

/// Everything [`BatchExecutor::run_batch`] returns: per-request
/// [`QueryResponse`]s in request order plus the fleet-level
/// [`BatchStats`].
///
/// ```
/// use mbb_serve::{BatchExecutor, QueryKind, QueryRequest, ShardedFleet};
///
/// let mut fleet = ShardedFleet::new();
/// fleet.add_shard("only", mbb_bigraph::generators::uniform_edges(12, 12, 55, 9))?;
/// let executor = BatchExecutor::new(fleet, 1);
/// let report = executor.run_batch(vec![
///     QueryRequest::new(0, QueryKind::Solve).on_graph("only"),
///     QueryRequest::new(1, QueryKind::Solve).on_graph("only"),
/// ]);
/// // The second solve reused the session's cached order: that is the
/// // amortisation a batch buys, and the report shows it.
/// assert!(report.stats.index_reuse_hits >= 1);
/// assert_eq!(report.stats.per_shard[0].requests, 2);
/// assert_eq!(report.stats.rejected, 0);
/// # Ok::<(), mbb_serve::ServeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One response per request, in request order.
    pub responses: Vec<QueryResponse>,
    /// Fleet-level aggregates.
    pub stats: BatchStats,
}

impl BatchReport {
    fn assemble(
        fleet: &ShardedFleet,
        responses: Vec<QueryResponse>,
        requests: usize,
        before: Vec<mbb_core::IndexStats>,
        wall_clock: Duration,
    ) -> BatchReport {
        let after = fleet.index_stats();
        // One pass over the responses, accumulating per shard index
        // (shard ids are unique, so the id → index map is exact).
        let shard_index: std::collections::HashMap<&str, usize> = fleet
            .shards()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id(), i))
            .collect();
        let mut served = vec![(0usize, 0u64); fleet.len()];
        for response in responses.iter().filter(|r| !r.outcome.is_rejected()) {
            let index = response
                .shard
                .as_deref()
                .and_then(|id| shard_index.get(id))
                .expect("executed responses carry a fleet shard id");
            served[*index].0 += 1;
            served[*index].1 += response.search_nodes();
        }
        let per_shard: Vec<ShardBatchStats> = fleet
            .shards()
            .iter()
            .zip(before.iter().zip(&after))
            .zip(&served)
            .map(|((shard, (b, a)), &(requests, search_nodes))| {
                let reuse = |b: u64, a: u64| a.saturating_sub(b);
                ShardBatchStats {
                    shard: shard.id().to_string(),
                    requests,
                    search_nodes,
                    index_reuse_hits: reuse(b.orders_reused, a.orders_reused)
                        + reuse(b.bicores_reused, a.bicores_reused)
                        + reuse(b.two_hops_reused, a.two_hops_reused),
                }
            })
            .collect();
        let stats = BatchStats {
            requests,
            rejected: responses.iter().filter(|r| r.outcome.is_rejected()).count(),
            wall_clock,
            total_queue_wait: responses.iter().map(|r| r.queue_wait).sum(),
            max_queue_wait: responses
                .iter()
                .map(|r| r.queue_wait)
                .max()
                .unwrap_or(Duration::ZERO),
            total_service: responses.iter().map(|r| r.service).sum(),
            index_reuse_hits: per_shard.iter().map(|s| s.index_reuse_hits).sum(),
            per_shard,
        };
        BatchReport { responses, stats }
    }
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_bigraph::generators;
    use mbb_bigraph::graph::Vertex;
    use mbb_core::budget::CancelToken;

    fn small_fleet() -> ShardedFleet {
        let mut fleet = ShardedFleet::new();
        fleet
            .add_shard("a", generators::uniform_edges(12, 12, 55, 1))
            .unwrap()
            .add_shard("b", generators::uniform_edges(10, 10, 45, 2))
            .unwrap();
        fleet
    }

    #[test]
    fn responses_come_back_in_request_order() {
        let executor = BatchExecutor::new(small_fleet(), 2);
        let requests: Vec<QueryRequest> = (0..10)
            .map(|i| {
                QueryRequest::new(100 + i, QueryKind::Solve).on_graph(if i % 2 == 0 {
                    "a"
                } else {
                    "b"
                })
            })
            .collect();
        let report = executor.run_batch(requests);
        let ids: Vec<u64> = report.responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, (100..110).collect::<Vec<u64>>());
        assert_eq!(report.stats.requests, 10);
        assert_eq!(report.stats.rejected, 0);
    }

    #[test]
    fn deadline_soonest_pops_first() {
        // Pure heap-order test: no workers involved.
        let now = Instant::now();
        let batch = Arc::new(BatchState::new(3));
        let job = |seq: usize, deadline: Option<Duration>| Job {
            deadline: deadline.map(|d| now + d),
            seq,
            request: QueryRequest::new(seq as u64, QueryKind::Solve),
            shard: 0,
            submitted: now,
            batch: Arc::clone(&batch),
        };
        let mut heap = BinaryHeap::new();
        heap.push(job(0, None));
        heap.push(job(1, Some(Duration::from_secs(5))));
        heap.push(job(2, Some(Duration::from_secs(1))));
        assert_eq!(heap.pop().unwrap().seq, 2);
        assert_eq!(heap.pop().unwrap().seq, 1);
        assert_eq!(heap.pop().unwrap().seq, 0);
    }

    #[test]
    fn invalid_requests_are_rejected_not_executed() {
        let executor = BatchExecutor::new(small_fleet(), 1);
        let report = executor.run_batch(vec![
            QueryRequest::new(0, QueryKind::Solve).on_graph("nowhere"),
            QueryRequest::new(1, QueryKind::Topk { k: 0 }).on_graph("a"),
            QueryRequest::new(
                2,
                QueryKind::Anchored {
                    vertex: Vertex::left(99),
                },
            )
            .on_graph("a"),
            QueryRequest::new(3, QueryKind::AnchoredEdge { u: 99, v: 0 }).on_graph("a"),
            QueryRequest::new(4, QueryKind::Weighted { weights: vec![1] }).on_graph("a"),
            QueryRequest::new(5, QueryKind::Solve)
                .on_graph("a")
                .with_threads(MAX_REQUEST_THREADS + 1),
            QueryRequest::new(
                6,
                QueryKind::Topk {
                    k: MAX_REQUEST_TOPK + 1,
                },
            )
            .on_graph("a"),
            QueryRequest::new(7, QueryKind::Solve).on_graph("a"),
        ]);
        assert_eq!(report.stats.rejected, 7);
        for r in &report.responses[..7] {
            assert!(r.outcome.is_rejected(), "id {}", r.id);
        }
        assert!(!report.responses[7].outcome.is_rejected());
        // Routing failures carry no shard; validation failures name the
        // shard that would have served the request.
        assert_eq!(report.responses[0].shard, None);
        assert_eq!(report.responses[1].shard.as_deref(), Some("a"));
        // Rejected requests burn no engine time.
        assert_eq!(report.responses[0].service, Duration::ZERO);
    }

    #[test]
    fn empty_batch_returns_immediately() {
        let executor = BatchExecutor::new(small_fleet(), 1);
        let report = executor.run_batch(Vec::new());
        assert!(report.responses.is_empty());
        assert_eq!(report.stats.requests, 0);
        assert_eq!(report.stats.max_queue_wait, Duration::ZERO);
    }

    #[test]
    fn executor_survives_multiple_batches() {
        let executor = BatchExecutor::new(small_fleet(), 2);
        let first = executor.run_batch(vec![QueryRequest::new(0, QueryKind::Solve).on_graph("a")]);
        let second = executor.run_batch(vec![QueryRequest::new(1, QueryKind::Solve).on_graph("a")]);
        assert_eq!(
            first.responses[0].outcome.headline_size(),
            second.responses[0].outcome.headline_size()
        );
        // The second batch reused the indices the first one built.
        assert!(second.stats.index_reuse_hits >= 1);
    }

    #[test]
    fn cancelled_request_reports_cancelled() {
        // Dense enough that stage 1 cannot prove optimality, so the
        // budget check after it observes the already-fired token. (On
        // trivial graphs a cancelled solve may legitimately finish
        // `Complete` before any check — anytime semantics.)
        let mut fleet = ShardedFleet::new();
        fleet
            .add_shard("dense", generators::dense_uniform(40, 40, 0.8, 3))
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let executor = BatchExecutor::new(fleet, 1);
        let report = executor.run_batch(vec![QueryRequest::new(0, QueryKind::Solve)
            .on_graph("dense")
            .with_cancel(token)]);
        assert_eq!(report.responses[0].termination, Termination::Cancelled);
    }

    #[test]
    fn workers_zero_resolves_to_cores() {
        let executor = BatchExecutor::new(small_fleet(), 0);
        assert!(executor.workers() >= 1);
        assert_eq!(executor.fleet().len(), 2);
    }
}
