//! Typed batch requests and responses.
//!
//! A [`QueryRequest`] names one of the engine's nine query kinds
//! ([`QueryKind`]) plus the service-level envelope around it: which graph
//! shard it targets, its deadline, its thread budget, and an optional
//! cancellation token. The matching [`QueryResponse`] carries the typed
//! payload ([`QueryOutcome`]), the query's [`Termination`], and the two
//! service-side timings a batch caller needs — queue wait and service
//! time.

use std::time::Duration;

use mbb_bigraph::graph::Vertex;
use mbb_core::budget::{CancelToken, Termination};
use mbb_core::engine::Enumeration;
use mbb_core::frontier::SizeFrontier;
use mbb_core::meb::EdgeBiclique;
use mbb_core::size_constrained::SizeConstrainedBiclique;
use mbb_core::stats::SolveStats;
use mbb_core::weighted::WeightedBiclique;
use mbb_core::{Biclique, MaximalBiclique};

/// One of the engine's nine query kinds, with its kind-specific
/// parameters. This is the typed payload of a [`QueryRequest`]; the
/// JSONL wire spelling of each variant is documented in
/// [`crate::jsonl`] and `docs/SERVING.md`.
///
/// ```
/// use mbb_serve::QueryKind;
/// let kind = QueryKind::Topk { k: 3 };
/// assert_eq!(kind.label(), "topk");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// The maximum balanced biclique of the shard graph.
    Solve,
    /// The `k` best balanced bicliques.
    Topk {
        /// How many results to rank.
        k: usize,
    },
    /// The largest balanced biclique through one vertex.
    Anchored {
        /// The anchor vertex (side + 0-based side index).
        vertex: Vertex,
    },
    /// The largest balanced biclique through one edge.
    AnchoredEdge {
        /// Left endpoint (0-based).
        u: u32,
        /// Right endpoint (0-based).
        v: u32,
    },
    /// The heaviest balanced biclique under per-vertex weights.
    Weighted {
        /// Weights indexed by global id (left vertices first).
        weights: Vec<u64>,
    },
    /// The maximum edge biclique.
    Meb,
    /// The Pareto frontier of feasible biclique sizes.
    Frontier,
    /// A witness for the `(a, b)`-biclique problem.
    SizeConstrained {
        /// Required left side size.
        a: usize,
        /// Required right side size.
        b: usize,
    },
    /// All maximal bicliques passing the filters.
    Enumerate {
        /// Report only bicliques with `|A| ≥ min_left`.
        min_left: usize,
        /// Report only bicliques with `|B| ≥ min_right`.
        min_right: usize,
        /// Stop (incomplete) after this many results.
        max_results: Option<u64>,
    },
}

impl QueryKind {
    /// The wire name of the kind — the `"kind"` field of the JSONL
    /// schema.
    pub fn label(&self) -> &'static str {
        match self {
            QueryKind::Solve => "solve",
            QueryKind::Topk { .. } => "topk",
            QueryKind::Anchored { .. } => "anchored",
            QueryKind::AnchoredEdge { .. } => "anchored_edge",
            QueryKind::Weighted { .. } => "weighted",
            QueryKind::Meb => "meb",
            QueryKind::Frontier => "frontier",
            QueryKind::SizeConstrained { .. } => "size_constrained",
            QueryKind::Enumerate { .. } => "enumerate",
        }
    }
}

/// One request of a batch: a [`QueryKind`] plus the service envelope.
///
/// Built with [`new`](Self::new) and the chainable `with_*` setters:
///
/// ```
/// use std::time::Duration;
/// use mbb_serve::{QueryKind, QueryRequest};
///
/// let request = QueryRequest::new(7, QueryKind::Topk { k: 5 })
///     .on_graph("reviews")
///     .with_deadline(Duration::from_millis(200));
/// assert_eq!(request.id, 7);
/// assert_eq!(request.graph.as_deref(), Some("reviews"));
/// ```
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Caller-chosen request id, echoed in the response. Need not be
    /// unique; responses are also returned in request order.
    pub id: u64,
    /// Target shard by graph id. `None` routes deterministically by
    /// hashing the request id (see
    /// [`ShardedFleet::route`](crate::ShardedFleet::route)).
    pub graph: Option<String>,
    /// The query itself.
    pub kind: QueryKind,
    /// Per-request deadline, measured **from batch submission** — it
    /// covers queue wait plus service time, and doubles as the request's
    /// scheduling priority (deadline-soonest first).
    pub deadline: Option<Duration>,
    /// Worker threads for the query's parallel stages (`0` = one per
    /// core). `None` = the shard engine's configured default.
    pub threads: Option<usize>,
    /// Cooperative cancellation handle; not representable on the JSONL
    /// wire (library callers only).
    pub cancel: Option<CancelToken>,
}

impl QueryRequest {
    /// A request with no graph id (hash-routed), no deadline, default
    /// threads and no cancellation token.
    pub fn new(id: u64, kind: QueryKind) -> QueryRequest {
        QueryRequest {
            id,
            graph: None,
            kind,
            deadline: None,
            threads: None,
            cancel: None,
        }
    }

    /// Targets a shard by its graph id.
    pub fn on_graph(mut self, graph: impl Into<String>) -> Self {
        self.graph = Some(graph.into());
        self
    }

    /// Sets the deadline (from batch submission; also the scheduling
    /// priority).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-query worker thread count (`0` = one per core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attaches a cancellation token; cancelling it stops the request at
    /// its next budget check (a still-queued request stops at its first).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// The typed payload of one executed request — the per-kind mirror of
/// what `engine.query().<kind>()` returns, plus [`Rejected`]
/// (`Rejected`) for requests that failed validation or routing and never
/// reached an engine.
///
/// [`Rejected`]: QueryOutcome::Rejected
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// `solve` payload.
    Solve(Biclique),
    /// `topk` payload, best first.
    Topk(Vec<MaximalBiclique>),
    /// `anchored` payload (empty iff the anchor has no incident edge).
    Anchored(Biclique),
    /// `anchored_edge` payload (`None` when the edge is absent).
    AnchoredEdge(Option<Biclique>),
    /// `weighted` payload.
    Weighted(WeightedBiclique),
    /// `meb` payload.
    Meb(EdgeBiclique),
    /// `frontier` payload.
    Frontier(SizeFrontier),
    /// `size_constrained` payload (`None` = no witness found).
    SizeConstrained(Option<SizeConstrainedBiclique>),
    /// `enumerate` payload.
    Enumerate(Enumeration),
    /// The request never executed: bad routing or invalid parameters.
    Rejected {
        /// Human-readable reason, echoed on the wire as `"error"`.
        reason: String,
    },
}

impl QueryOutcome {
    /// The headline size of the answer, for logging and quick
    /// comparisons. Per kind: balanced half-size (`solve`, `anchored`,
    /// `anchored_edge`, `size_constrained` — 0 when absent), best
    /// balanced size (`topk`, `enumerate` — over the reported set),
    /// total weight (`weighted`), edge count (`meb`), MBB half
    /// (`frontier`), and 0 for rejected requests.
    pub fn headline_size(&self) -> usize {
        match self {
            QueryOutcome::Solve(b) | QueryOutcome::Anchored(b) => b.half_size(),
            QueryOutcome::AnchoredEdge(found) => found.as_ref().map_or(0, |b| b.half_size()),
            QueryOutcome::Topk(list) => list
                .iter()
                .map(MaximalBiclique::balanced_size)
                .max()
                .unwrap_or(0),
            QueryOutcome::Weighted(w) => w.weight as usize,
            QueryOutcome::Meb(m) => m.edges(),
            QueryOutcome::Frontier(f) => f.mbb_half(),
            QueryOutcome::SizeConstrained(found) => found
                .as_ref()
                .map_or(0, |w| w.left.len().min(w.right.len())),
            QueryOutcome::Enumerate(e) => e
                .bicliques
                .iter()
                .map(MaximalBiclique::balanced_size)
                .max()
                .unwrap_or(0),
            QueryOutcome::Rejected { .. } => 0,
        }
    }

    /// True for [`QueryOutcome::Rejected`].
    pub fn is_rejected(&self) -> bool {
        matches!(self, QueryOutcome::Rejected { .. })
    }
}

/// The service's answer to one [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The request's id, echoed.
    pub id: u64,
    /// The shard that served the request (`None` when routing itself
    /// failed).
    pub shard: Option<String>,
    /// The wire kind label of the request.
    pub kind: &'static str,
    /// The typed payload.
    pub outcome: QueryOutcome,
    /// How the query ended. Rejected requests report
    /// [`Termination::Complete`] (they consumed no budget); check
    /// [`QueryOutcome::is_rejected`] first.
    pub termination: Termination,
    /// Time between batch submission and a worker picking the request
    /// up.
    pub queue_wait: Duration,
    /// Time the worker spent executing the query.
    pub service: Duration,
    /// Full solver statistics of the query (zeroed for rejected
    /// requests and kinds that report no solver stats).
    pub stats: SolveStats,
}

impl QueryResponse {
    /// Search nodes the query explored (shorthand for
    /// `stats.search.nodes`).
    pub fn search_nodes(&self) -> u64 {
        self.stats.search.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_nine_kinds() {
        let kinds = [
            QueryKind::Solve,
            QueryKind::Topk { k: 1 },
            QueryKind::Anchored {
                vertex: Vertex::left(0),
            },
            QueryKind::AnchoredEdge { u: 0, v: 0 },
            QueryKind::Weighted { weights: vec![] },
            QueryKind::Meb,
            QueryKind::Frontier,
            QueryKind::SizeConstrained { a: 1, b: 1 },
            QueryKind::Enumerate {
                min_left: 1,
                min_right: 1,
                max_results: None,
            },
        ];
        let labels: std::collections::HashSet<&str> = kinds.iter().map(QueryKind::label).collect();
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn builder_chains() {
        let token = CancelToken::new();
        let r = QueryRequest::new(3, QueryKind::Meb)
            .on_graph("g")
            .with_deadline(Duration::from_secs(1))
            .with_threads(2)
            .with_cancel(token);
        assert_eq!(r.graph.as_deref(), Some("g"));
        assert_eq!(r.deadline, Some(Duration::from_secs(1)));
        assert_eq!(r.threads, Some(2));
        assert!(r.cancel.is_some());
    }

    #[test]
    fn headline_sizes() {
        assert_eq!(
            QueryOutcome::Solve(Biclique::balanced(vec![0, 1], vec![0, 1])).headline_size(),
            2
        );
        assert_eq!(QueryOutcome::AnchoredEdge(None).headline_size(), 0);
        assert_eq!(
            QueryOutcome::Rejected { reason: "x".into() }.headline_size(),
            0
        );
        assert!(QueryOutcome::Rejected { reason: "x".into() }.is_rejected());
    }
}
