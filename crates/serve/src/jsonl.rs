//! The JSONL wire format: one JSON object per line, requests in,
//! responses out. The full schema with a worked example lives in
//! `docs/SERVING.md`; this module is the single implementation of it
//! (the CLI `serve-batch` subcommand and the tests both go through
//! here).
//!
//! Conventions, matching the rest of the `mbb` CLI:
//!
//! * vertex ids are **1-based** on the wire (KONECT convention) and
//!   0-based in memory;
//! * field names are `snake_case`; the `kind` field carries the
//!   [`QueryKind::label`] names;
//! * terminations use the [`Termination`](mbb_core::budget::Termination)
//!   display form (`"complete"`, `"deadline-exceeded"`, `"cancelled"`);
//! * rejected requests come back as `{"id": …, "kind": …, "error": …}` —
//!   the presence of `"error"` is the discriminator.

use std::time::Duration;

use mbb_bigraph::graph::Vertex;
use mbb_core::{Biclique, MaximalBiclique};
use serde_json::Value;

use crate::fleet::ServeError;
use crate::request::{QueryKind, QueryOutcome, QueryRequest, QueryResponse};
use crate::stream::{MetricsReport, ServeStats, StreamEvent};

// ---------------------------------------------------------------------
// Request parsing.

/// Parses a whole JSONL request document (one request per non-empty
/// line; `#`-prefixed lines are comments). Line numbers in errors are
/// 1-based.
///
/// ```
/// use mbb_serve::jsonl::parse_requests;
/// let text = r#"
/// {"id": 1, "graph": "a", "kind": "solve", "deadline_ms": 500}
/// {"kind": "topk", "k": 3}
/// "#;
/// let requests = parse_requests(text)?;
/// assert_eq!(requests.len(), 2);
/// assert_eq!(requests[0].id, 1);
/// assert_eq!(requests[1].id, 3); // defaults to its 1-based line number
/// # Ok::<(), mbb_serve::ServeError>(())
/// ```
pub fn parse_requests(text: &str) -> Result<Vec<QueryRequest>, ServeError> {
    let mut requests = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        requests.push(parse_request_line(trimmed, line_no)?);
    }
    Ok(requests)
}

/// Parses one request line. `line_no` (1-based) seeds error messages and
/// the default `id` for requests that omit one.
pub fn parse_request_line(line: &str, line_no: usize) -> Result<QueryRequest, ServeError> {
    let bad = |message: String| ServeError::BadRequest {
        line: line_no,
        message,
    };
    let value: Value = serde_json::from_str(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    if value.get("kind").is_none() {
        return Err(bad("missing \"kind\"".into()));
    }
    let kind_name = value["kind"]
        .as_str()
        .ok_or_else(|| bad("\"kind\" must be a string".into()))?
        .to_string();

    let u64_field = |key: &str| -> Result<Option<u64>, ServeError> {
        match value.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| bad(format!("{key:?} must be a non-negative integer"))),
        }
    };
    let required_u64 = |key: &str| -> Result<u64, ServeError> {
        u64_field(key)?.ok_or_else(|| bad(format!("{kind_name}: missing {key:?}")))
    };
    // 1-based on the wire → 0-based in memory.
    let vertex_index = |key: &str| -> Result<u32, ServeError> {
        let raw = required_u64(key)?;
        if raw == 0 {
            return Err(bad(format!("{key:?} is 1-based; 0 is out of range")));
        }
        u32::try_from(raw - 1).map_err(|_| bad(format!("{key:?} out of range")))
    };

    let kind = match kind_name.as_str() {
        "solve" => QueryKind::Solve,
        "topk" => QueryKind::Topk {
            k: required_u64("k")? as usize,
        },
        "anchored" => {
            let index = vertex_index("vertex")?;
            let side = match value.get("side") {
                None => "left",
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| bad("\"side\" must be a string".into()))?,
            };
            let vertex = match side {
                "left" => Vertex::left(index),
                "right" => Vertex::right(index),
                other => return Err(bad(format!("\"side\" must be left|right, got {other:?}"))),
            };
            QueryKind::Anchored { vertex }
        }
        "anchored_edge" => QueryKind::AnchoredEdge {
            u: vertex_index("u")?,
            v: vertex_index("v")?,
        },
        "weighted" => {
            let weights = value
                .get("weights")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("weighted: missing \"weights\" array".into()))?
                .iter()
                .map(|w| {
                    w.as_u64()
                        .ok_or_else(|| bad("weights must be non-negative integers".into()))
                })
                .collect::<Result<Vec<u64>, ServeError>>()?;
            QueryKind::Weighted { weights }
        }
        "meb" => QueryKind::Meb,
        "frontier" => QueryKind::Frontier,
        "size_constrained" => QueryKind::SizeConstrained {
            a: required_u64("a")? as usize,
            b: required_u64("b")? as usize,
        },
        "enumerate" => QueryKind::Enumerate {
            min_left: u64_field("min_left")?.unwrap_or(1) as usize,
            min_right: u64_field("min_right")?.unwrap_or(1) as usize,
            max_results: u64_field("max_results")?,
        },
        other => return Err(bad(format!("unknown kind {other:?}"))),
    };

    let mut request = QueryRequest::new(u64_field("id")?.unwrap_or(line_no as u64), kind);
    if let Some(graph) = value.get("graph") {
        let graph = graph
            .as_str()
            .ok_or_else(|| bad("\"graph\" must be a string".into()))?;
        request = request.on_graph(graph);
    }
    if let Some(ms) = u64_field("deadline_ms")? {
        request = request.with_deadline(Duration::from_millis(ms));
    }
    if let Some(threads) = u64_field("threads")? {
        request = request.with_threads(threads as usize);
    }
    Ok(request)
}

// ---------------------------------------------------------------------
// Stream lines: requests plus control verbs (resident mode).

/// A control verb of the resident stream — a line with a `"control"`
/// field instead of a `"kind"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlRequest {
    /// `{"control": "stats"}` — emit a [`ServeStats`] snapshot line.
    Stats,
    /// `{"control": "metrics"}` — emit a full observability snapshot:
    /// the `stats` counters plus latency histogram quantiles.
    Metrics,
    /// `{"control": "drain"}` — block admission until everything
    /// admitted so far has completed, then acknowledge.
    Drain,
    /// `{"control": "reload", "graph": …, "source": …}` — swap the
    /// shard's engine for a freshly store-loaded graph.
    Reload {
        /// The shard (graph id) to reload.
        graph: String,
        /// The name or path the store resolves the new graph from.
        source: String,
    },
}

/// One parsed line of the resident request stream.
#[derive(Debug, Clone)]
pub enum StreamLine {
    /// An admissible query request.
    Request(QueryRequest),
    /// A control verb.
    Control(ControlRequest),
}

/// Parses one resident-stream line: a control line when a `"control"`
/// field is present, otherwise a request line per [`parse_request_line`].
///
/// ```
/// use mbb_serve::jsonl::{parse_stream_line, ControlRequest, StreamLine};
/// let line = parse_stream_line(r#"{"control": "reload", "graph": "a", "source": "a2.txt"}"#, 1)?;
/// assert!(matches!(
///     line,
///     StreamLine::Control(ControlRequest::Reload { .. })
/// ));
/// # Ok::<(), mbb_serve::ServeError>(())
/// ```
pub fn parse_stream_line(line: &str, line_no: usize) -> Result<StreamLine, ServeError> {
    let bad = |message: String| ServeError::BadRequest {
        line: line_no,
        message,
    };
    let value: Value = serde_json::from_str(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let Some(control) = value.get("control") else {
        return Ok(StreamLine::Request(parse_request_line(line, line_no)?));
    };
    let verb = control
        .as_str()
        .ok_or_else(|| bad("\"control\" must be a string".into()))?;
    let string_field = |key: &str| -> Result<String, ServeError> {
        value
            .get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| bad(format!("control {verb:?}: missing string {key:?}")))
    };
    let control = match verb {
        "stats" => ControlRequest::Stats,
        "metrics" => ControlRequest::Metrics,
        "drain" => ControlRequest::Drain,
        "reload" => ControlRequest::Reload {
            graph: string_field("graph")?,
            source: string_field("source")?,
        },
        other => return Err(bad(format!("unknown control {other:?}"))),
    };
    Ok(StreamLine::Control(control))
}

// ---------------------------------------------------------------------
// Request encoding (round-trip support for tooling and tests).

/// Encodes a request as one JSONL line — the inverse of
/// [`parse_request_line`] for everything the wire can carry (a
/// [`CancelToken`](mbb_core::budget::CancelToken) cannot cross the
/// wire and is dropped).
pub fn encode_request(request: &QueryRequest) -> String {
    let mut fields = vec![
        ("id".to_string(), Value::UInt(request.id)),
        (
            "kind".to_string(),
            Value::String(request.kind.label().to_string()),
        ),
    ];
    if let Some(graph) = &request.graph {
        fields.push(("graph".into(), Value::String(graph.clone())));
    }
    match &request.kind {
        QueryKind::Solve | QueryKind::Meb | QueryKind::Frontier => {}
        QueryKind::Topk { k } => fields.push(("k".into(), Value::UInt(*k as u64))),
        QueryKind::Anchored { vertex } => {
            let side = match vertex.side {
                mbb_bigraph::graph::Side::Left => "left",
                mbb_bigraph::graph::Side::Right => "right",
            };
            fields.push(("side".into(), Value::String(side.into())));
            fields.push(("vertex".into(), Value::UInt(u64::from(vertex.index) + 1)));
        }
        QueryKind::AnchoredEdge { u, v } => {
            fields.push(("u".into(), Value::UInt(u64::from(*u) + 1)));
            fields.push(("v".into(), Value::UInt(u64::from(*v) + 1)));
        }
        QueryKind::Weighted { weights } => fields.push((
            "weights".into(),
            Value::Array(weights.iter().map(|&w| Value::UInt(w)).collect()),
        )),
        QueryKind::SizeConstrained { a, b } => {
            fields.push(("a".into(), Value::UInt(*a as u64)));
            fields.push(("b".into(), Value::UInt(*b as u64)));
        }
        QueryKind::Enumerate {
            min_left,
            min_right,
            max_results,
        } => {
            fields.push(("min_left".into(), Value::UInt(*min_left as u64)));
            fields.push(("min_right".into(), Value::UInt(*min_right as u64)));
            if let Some(max) = max_results {
                fields.push(("max_results".into(), Value::UInt(*max)));
            }
        }
    }
    if let Some(deadline) = request.deadline {
        fields.push((
            "deadline_ms".into(),
            Value::UInt(deadline.as_millis() as u64),
        ));
    }
    if let Some(threads) = request.threads {
        fields.push(("threads".into(), Value::UInt(threads as u64)));
    }
    Value::Object(fields).to_string()
}

// ---------------------------------------------------------------------
// Response encoding.

/// 1-based id list.
fn ids(side: &[u32]) -> Value {
    Value::Array(
        side.iter()
            .map(|&v| Value::UInt(u64::from(v) + 1))
            .collect(),
    )
}

fn biclique(b: &Biclique) -> Vec<(String, Value)> {
    vec![
        ("left".into(), ids(&b.left)),
        ("right".into(), ids(&b.right)),
        ("half_size".into(), Value::UInt(b.half_size() as u64)),
    ]
}

fn maximal(list: &[MaximalBiclique]) -> Value {
    Value::Array(
        list.iter()
            .enumerate()
            .map(|(i, b)| {
                Value::Object(vec![
                    ("rank".into(), Value::UInt(i as u64 + 1)),
                    (
                        "balanced_size".into(),
                        Value::UInt(b.balanced_size() as u64),
                    ),
                    ("left".into(), ids(&b.left)),
                    ("right".into(), ids(&b.right)),
                ])
            })
            .collect(),
    )
}

/// `{"found": bool, …payload}` for the two witness-or-nothing kinds.
fn optional(found: Option<Vec<(String, Value)>>) -> Value {
    match found {
        Some(mut fields) => {
            fields.insert(0, ("found".into(), Value::Bool(true)));
            Value::Object(fields)
        }
        None => Value::Object(vec![("found".into(), Value::Bool(false))]),
    }
}

fn millis(d: Duration) -> Value {
    // Three decimals is plenty for service timings and keeps lines tidy.
    Value::Float((d.as_secs_f64() * 1e3 * 1e3).round() / 1e3)
}

fn outcome_value(outcome: &QueryOutcome) -> Value {
    match outcome {
        QueryOutcome::Solve(b) | QueryOutcome::Anchored(b) => Value::Object(biclique(b)),
        QueryOutcome::AnchoredEdge(found) => optional(found.as_ref().map(biclique)),
        QueryOutcome::SizeConstrained(found) => optional(found.as_ref().map(|w| {
            vec![
                ("left".into(), ids(&w.left)),
                ("right".into(), ids(&w.right)),
            ]
        })),
        QueryOutcome::Topk(list) => Value::Object(vec![("bicliques".into(), maximal(list))]),
        QueryOutcome::Weighted(w) => Value::Object(vec![
            ("left".into(), ids(&w.left)),
            ("right".into(), ids(&w.right)),
            ("weight".into(), Value::UInt(w.weight)),
        ]),
        QueryOutcome::Meb(m) => Value::Object(vec![
            ("left".into(), ids(&m.left)),
            ("right".into(), ids(&m.right)),
            ("edges".into(), Value::UInt(m.edges() as u64)),
        ]),
        QueryOutcome::Frontier(f) => Value::Object(vec![
            (
                "pairs".into(),
                Value::Array(
                    f.pairs
                        .iter()
                        .map(|&(a, b)| {
                            Value::Array(vec![Value::UInt(a as u64), Value::UInt(b as u64)])
                        })
                        .collect(),
                ),
            ),
            ("complete".into(), Value::Bool(f.complete)),
        ]),
        QueryOutcome::Enumerate(e) => Value::Object(vec![
            ("bicliques".into(), maximal(&e.bicliques)),
            ("reported".into(), Value::UInt(e.outcome.reported)),
            ("visited".into(), Value::UInt(e.outcome.visited)),
            ("complete".into(), Value::Bool(e.outcome.complete)),
        ]),
        QueryOutcome::Rejected { .. } => Value::Null,
    }
}

/// Encodes one response as one JSONL line.
pub fn encode_response(response: &QueryResponse) -> String {
    let mut fields = vec![("id".to_string(), Value::UInt(response.id))];
    if let Some(shard) = &response.shard {
        fields.push(("graph".into(), Value::String(shard.clone())));
    }
    fields.push(("kind".into(), Value::String(response.kind.to_string())));
    if let QueryOutcome::Rejected { reason } = &response.outcome {
        fields.push(("error".into(), Value::String(reason.clone())));
        fields.push(("error_kind".into(), Value::String("invalid".into())));
        return Value::Object(fields).to_string();
    }
    fields.push((
        "termination".into(),
        Value::String(response.termination.to_string()),
    ));
    fields.push(("queue_wait_ms".into(), millis(response.queue_wait)));
    fields.push(("service_ms".into(), millis(response.service)));
    fields.push(("search_nodes".into(), Value::UInt(response.search_nodes())));
    fields.push(("result".into(), outcome_value(&response.outcome)));
    Value::Object(fields).to_string()
}

// ---------------------------------------------------------------------
// Stream event encoding (resident mode).

fn serve_stats_value(stats: &ServeStats) -> Value {
    let shards = Value::Array(
        stats
            .per_shard
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("graph".into(), Value::String(s.shard.clone())),
                    ("served".into(), Value::UInt(s.served)),
                    ("shed".into(), Value::UInt(s.shed)),
                    ("search_nodes".into(), Value::UInt(s.search_nodes)),
                    ("index_reuse_hits".into(), Value::UInt(s.index_reuse_hits)),
                    ("reloads".into(), Value::UInt(s.reloads)),
                ])
            })
            .collect(),
    );
    Value::Object(vec![
        ("admitted".into(), Value::UInt(stats.admitted)),
        ("completed".into(), Value::UInt(stats.completed)),
        ("shed".into(), Value::UInt(stats.shed)),
        ("rejected".into(), Value::UInt(stats.rejected)),
        ("parse_errors".into(), Value::UInt(stats.parse_errors)),
        ("reloads".into(), Value::UInt(stats.reloads)),
        ("disconnected".into(), Value::UInt(stats.disconnected)),
        ("connections".into(), Value::UInt(stats.connections)),
        ("active_conns".into(), Value::UInt(stats.active_conns)),
        ("disconnects".into(), Value::UInt(stats.disconnects)),
        ("queue_depth".into(), Value::UInt(stats.queue_depth as u64)),
        (
            "max_queue_depth".into(),
            Value::UInt(stats.max_queue_depth as u64),
        ),
        ("total_queue_wait_ms".into(), millis(stats.total_queue_wait)),
        ("max_queue_wait_ms".into(), millis(stats.max_queue_wait)),
        ("total_service_ms".into(), millis(stats.total_service)),
        (
            "index_reuse_hits".into(),
            Value::UInt(stats.index_reuse_hits),
        ),
        ("shards".into(), shards),
    ])
}

/// Encodes one resident-stream event as one JSONL line. Error-bearing
/// lines carry an `"error"` message plus a machine-readable
/// `"error_kind"` discriminator: `"invalid"` (validation/routing
/// rejection), `"shed"` (admission control refused to execute),
/// `"parse"` (unparseable input line), `"reload"` (a reload that
/// failed), `"disconnected"` (the originating socket connection went
/// away before the request could execute).
pub fn encode_stream_event(event: &StreamEvent) -> String {
    match event {
        StreamEvent::Response(response) => encode_response(response),
        StreamEvent::Shed {
            id,
            graph,
            kind,
            reason,
        } => {
            let mut fields = vec![("id".to_string(), Value::UInt(*id))];
            if let Some(graph) = graph {
                fields.push(("graph".into(), Value::String(graph.clone())));
            }
            fields.push(("kind".into(), Value::String((*kind).to_string())));
            fields.push(("error".into(), Value::String(reason.clone())));
            fields.push(("error_kind".into(), Value::String("shed".into())));
            Value::Object(fields).to_string()
        }
        StreamEvent::Disconnected {
            id,
            graph,
            kind,
            reason,
        } => {
            let mut fields = vec![("id".to_string(), Value::UInt(*id))];
            if let Some(graph) = graph {
                fields.push(("graph".into(), Value::String(graph.clone())));
            }
            fields.push(("kind".into(), Value::String((*kind).to_string())));
            fields.push(("error".into(), Value::String(reason.clone())));
            fields.push(("error_kind".into(), Value::String("disconnected".into())));
            Value::Object(fields).to_string()
        }
        StreamEvent::ParseError { line, message } => Value::Object(vec![
            ("line".into(), Value::UInt(*line as u64)),
            ("error".into(), Value::String(message.clone())),
            ("error_kind".into(), Value::String("parse".into())),
        ])
        .to_string(),
        StreamEvent::ReloadAck { graph, result } => {
            let mut fields = vec![
                ("control".to_string(), Value::String("reload".into())),
                ("graph".to_string(), Value::String(graph.clone())),
            ];
            match result {
                Ok(outcome) => {
                    fields.push(("ok".into(), Value::Bool(true)));
                    fields.push(("forked".into(), Value::Bool(outcome.forked)));
                    fields.push(("detail".into(), Value::String(outcome.detail.clone())));
                }
                Err(message) => {
                    fields.push(("ok".into(), Value::Bool(false)));
                    fields.push(("error".into(), Value::String(message.clone())));
                    fields.push(("error_kind".into(), Value::String("reload".into())));
                }
            }
            Value::Object(fields).to_string()
        }
        StreamEvent::Drained { completed } => Value::Object(vec![
            ("control".into(), Value::String("drain".into())),
            ("completed".into(), Value::UInt(*completed)),
        ])
        .to_string(),
        StreamEvent::Stats(stats) => {
            Value::Object(vec![("stats".into(), serve_stats_value(stats))]).to_string()
        }
        StreamEvent::Metrics(report) => {
            Value::Object(vec![("metrics".into(), metrics_value(report))]).to_string()
        }
    }
}

/// Milliseconds (3 decimals) from a nanosecond count — histogram values
/// are recorded in nanoseconds, the wire speaks milliseconds like every
/// other timing field.
fn nanos_ms(nanos: u64) -> Value {
    Value::Float((nanos as f64 / 1e6 * 1e3).round() / 1e3)
}

fn histogram_value(h: &mbb_obs::HistogramSnapshot) -> Value {
    Value::Object(vec![
        ("count".into(), Value::UInt(h.count)),
        ("mean_ms".into(), nanos_ms(h.mean() as u64)),
        ("p50_ms".into(), nanos_ms(h.p50())),
        ("p90_ms".into(), nanos_ms(h.p90())),
        ("p99_ms".into(), nanos_ms(h.p99())),
        ("max_ms".into(), nanos_ms(h.max)),
    ])
}

/// The `{"metrics": …}` payload: the exact `stats` object (same builder,
/// so the two verbs can never drift), plus latency quantiles and the
/// span-drop counter.
fn metrics_value(report: &MetricsReport) -> Value {
    Value::Object(vec![
        ("stats".into(), serve_stats_value(&report.stats)),
        (
            "histograms".into(),
            Value::Object(vec![
                ("queue_wait_ms".into(), histogram_value(&report.queue_wait)),
                ("service_ms".into(), histogram_value(&report.service)),
            ]),
        ),
        ("spans_dropped".into(), Value::UInt(report.spans_dropped)),
    ])
}

/// Encodes a whole [`BatchReport`](crate::BatchReport): one line per
/// response (request order), plus, when `include_stats` is set, one
/// trailing `{"batch": …}` summary line.
pub fn encode_report(report: &crate::BatchReport, include_stats: bool) -> String {
    let mut out = String::new();
    for response in &report.responses {
        out.push_str(&encode_response(response));
        out.push('\n');
    }
    if include_stats {
        let stats = &report.stats;
        let shards = Value::Array(
            stats
                .per_shard
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("graph".into(), Value::String(s.shard.clone())),
                        ("requests".into(), Value::UInt(s.requests as u64)),
                        ("search_nodes".into(), Value::UInt(s.search_nodes)),
                        ("index_reuse_hits".into(), Value::UInt(s.index_reuse_hits)),
                    ])
                })
                .collect(),
        );
        let batch = Value::Object(vec![
            ("requests".into(), Value::UInt(stats.requests as u64)),
            ("rejected".into(), Value::UInt(stats.rejected as u64)),
            ("wall_clock_ms".into(), millis(stats.wall_clock)),
            ("total_queue_wait_ms".into(), millis(stats.total_queue_wait)),
            ("max_queue_wait_ms".into(), millis(stats.max_queue_wait)),
            ("total_service_ms".into(), millis(stats.total_service)),
            (
                "index_reuse_hits".into(),
                Value::UInt(stats.index_reuse_hits),
            ),
            ("shards".into(), shards),
        ]);
        out.push_str(&Value::Object(vec![("batch".into(), batch)]).to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let text = r#"
{"id": 1, "graph": "g", "kind": "solve"}
{"id": 2, "kind": "topk", "k": 4}
{"id": 3, "kind": "anchored", "side": "right", "vertex": 5}
{"id": 4, "kind": "anchored_edge", "u": 2, "v": 3}
{"id": 5, "kind": "weighted", "weights": [1, 2, 3]}
{"id": 6, "kind": "meb"}
{"id": 7, "kind": "frontier"}
{"id": 8, "kind": "size_constrained", "a": 2, "b": 3}
{"id": 9, "kind": "enumerate", "min_left": 2, "max_results": 10}
"#;
        let requests = parse_requests(text).unwrap();
        assert_eq!(requests.len(), 9);
        assert_eq!(requests[0].kind, QueryKind::Solve);
        assert_eq!(requests[1].kind, QueryKind::Topk { k: 4 });
        assert_eq!(
            requests[2].kind,
            QueryKind::Anchored {
                vertex: Vertex::right(4) // 1-based wire → 0-based memory
            }
        );
        assert_eq!(requests[3].kind, QueryKind::AnchoredEdge { u: 1, v: 2 });
        assert_eq!(
            requests[4].kind,
            QueryKind::Weighted {
                weights: vec![1, 2, 3]
            }
        );
        assert_eq!(
            requests[8].kind,
            QueryKind::Enumerate {
                min_left: 2,
                min_right: 1,
                max_results: Some(10)
            }
        );
    }

    #[test]
    fn envelope_fields_parse() {
        let r = parse_request_line(
            r#"{"id": 9, "graph": "a", "kind": "solve", "deadline_ms": 250, "threads": 2}"#,
            1,
        )
        .unwrap();
        assert_eq!(r.id, 9);
        assert_eq!(r.graph.as_deref(), Some("a"));
        assert_eq!(r.deadline, Some(Duration::from_millis(250)));
        assert_eq!(r.threads, Some(2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_requests("{\"kind\": \"solve\"}\nnot json\n").unwrap_err();
        assert_eq!(
            match err {
                ServeError::BadRequest { line, .. } => line,
                other => panic!("unexpected {other:?}"),
            },
            2
        );
        assert!(parse_request_line("{}", 1).is_err());
        assert!(parse_request_line(r#"{"kind": "quantum"}"#, 1).is_err());
        assert!(parse_request_line(r#"{"kind": "topk"}"#, 1).is_err());
        assert!(parse_request_line(r#"{"kind": "anchored", "vertex": 0}"#, 1).is_err());
        // A malformed side must be rejected, never silently defaulted.
        assert!(parse_request_line(r#"{"kind": "anchored", "vertex": 1, "side": 2}"#, 1).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let originals = vec![
            QueryRequest::new(1, QueryKind::Solve).on_graph("g"),
            QueryRequest::new(2, QueryKind::Topk { k: 3 })
                .with_deadline(Duration::from_millis(100)),
            QueryRequest::new(
                3,
                QueryKind::Anchored {
                    vertex: Vertex::left(7),
                },
            )
            .with_threads(4),
            QueryRequest::new(
                4,
                QueryKind::Enumerate {
                    min_left: 2,
                    min_right: 3,
                    max_results: Some(5),
                },
            ),
        ];
        for original in &originals {
            let line = encode_request(original);
            let parsed = parse_request_line(&line, 1).unwrap();
            assert_eq!(parsed.id, original.id);
            assert_eq!(parsed.graph, original.graph);
            assert_eq!(parsed.kind, original.kind);
            assert_eq!(parsed.deadline, original.deadline);
            assert_eq!(parsed.threads, original.threads);
        }
    }

    #[test]
    fn response_lines_are_one_json_object() {
        use mbb_core::budget::Termination;
        use mbb_core::stats::SolveStats;
        let response = QueryResponse {
            id: 7,
            shard: Some("g".into()),
            kind: "solve",
            outcome: QueryOutcome::Solve(Biclique::balanced(vec![0, 2], vec![1, 3])),
            termination: Termination::Complete,
            queue_wait: Duration::from_micros(1500),
            service: Duration::from_millis(2),
            stats: SolveStats::default(),
        };
        let line = encode_response(&response);
        let value: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(value["id"].as_u64(), Some(7));
        assert_eq!(value["termination"].as_str(), Some("complete"));
        // 1-based ids on the wire.
        assert_eq!(
            value["result"]["left"].as_array().unwrap()[0].as_u64(),
            Some(1)
        );
        assert_eq!(value["result"]["half_size"].as_u64(), Some(2));
        assert_eq!(value["queue_wait_ms"].as_f64(), Some(1.5));
    }

    #[test]
    fn rejected_responses_encode_the_error() {
        use mbb_core::budget::Termination;
        use mbb_core::stats::SolveStats;
        let response = QueryResponse {
            id: 3,
            shard: None,
            kind: "solve",
            outcome: QueryOutcome::Rejected {
                reason: "unknown shard \"zz\"".into(),
            },
            termination: Termination::Complete,
            queue_wait: Duration::ZERO,
            service: Duration::ZERO,
            stats: SolveStats::default(),
        };
        let line = encode_response(&response);
        let value: Value = serde_json::from_str(&line).unwrap();
        assert!(value["error"].as_str().unwrap().contains("zz"));
        assert_eq!(value["error_kind"].as_str(), Some("invalid"));
        assert!(value.get("termination").is_none());
    }

    #[test]
    fn stream_lines_split_requests_from_controls() {
        assert!(matches!(
            parse_stream_line(r#"{"id": 1, "kind": "solve"}"#, 1).unwrap(),
            StreamLine::Request(r) if r.id == 1
        ));
        assert!(matches!(
            parse_stream_line(r#"{"control": "stats"}"#, 1).unwrap(),
            StreamLine::Control(ControlRequest::Stats)
        ));
        assert!(matches!(
            parse_stream_line(r#"{"control": "drain"}"#, 1).unwrap(),
            StreamLine::Control(ControlRequest::Drain)
        ));
        let reload = parse_stream_line(
            r#"{"control": "reload", "graph": "a", "source": "next.txt"}"#,
            1,
        )
        .unwrap();
        assert!(matches!(
            reload,
            StreamLine::Control(ControlRequest::Reload { graph, source })
                if graph == "a" && source == "next.txt"
        ));
        // Malformed controls are typed errors with the line number.
        assert!(parse_stream_line(r#"{"control": "restart"}"#, 7).is_err());
        assert!(parse_stream_line(r#"{"control": "reload", "graph": "a"}"#, 7).is_err());
        assert!(parse_stream_line(r#"{"control": 3}"#, 7).is_err());
    }

    #[test]
    fn stream_events_encode_with_error_kinds() {
        use crate::stream::ReloadOutcome;
        let shed = encode_stream_event(&StreamEvent::Shed {
            id: 4,
            graph: Some("g".into()),
            kind: "solve",
            reason: "deadline budget exhausted on arrival".into(),
        });
        let value: Value = serde_json::from_str(&shed).unwrap();
        assert_eq!(value["error_kind"].as_str(), Some("shed"));
        assert_eq!(value["id"].as_u64(), Some(4));

        let parse = encode_stream_event(&StreamEvent::ParseError {
            line: 9,
            message: "invalid JSON".into(),
        });
        let value: Value = serde_json::from_str(&parse).unwrap();
        assert_eq!(value["error_kind"].as_str(), Some("parse"));
        assert_eq!(value["line"].as_u64(), Some(9));

        let ack = encode_stream_event(&StreamEvent::ReloadAck {
            graph: "g".into(),
            result: Ok(ReloadOutcome {
                detail: "parsed in 1ms".into(),
                forked: true,
            }),
        });
        let value: Value = serde_json::from_str(&ack).unwrap();
        assert_eq!(value["control"].as_str(), Some("reload"));
        assert_eq!(value["ok"].as_bool(), Some(true));
        assert_eq!(value["forked"].as_bool(), Some(true));

        let failed = encode_stream_event(&StreamEvent::ReloadAck {
            graph: "g".into(),
            result: Err("no such file".into()),
        });
        let value: Value = serde_json::from_str(&failed).unwrap();
        assert_eq!(value["ok"].as_bool(), Some(false));
        assert_eq!(value["error_kind"].as_str(), Some("reload"));

        let drained = encode_stream_event(&StreamEvent::Drained { completed: 12 });
        let value: Value = serde_json::from_str(&drained).unwrap();
        assert_eq!(value["control"].as_str(), Some("drain"));
        assert_eq!(value["completed"].as_u64(), Some(12));

        let disconnected = encode_stream_event(&StreamEvent::Disconnected {
            id: 9,
            graph: Some("g".into()),
            kind: "solve",
            reason: "originating connection disconnected".into(),
        });
        let value: Value = serde_json::from_str(&disconnected).unwrap();
        assert_eq!(value["id"].as_u64(), Some(9));
        assert_eq!(value["graph"].as_str(), Some("g"));
        assert_eq!(value["error_kind"].as_str(), Some("disconnected"));
    }

    #[test]
    fn stats_events_carry_the_counters() {
        use crate::stream::{ServeStats, ShardServeStats};
        let stats = ServeStats {
            admitted: 10,
            completed: 8,
            shed: 1,
            rejected: 1,
            parse_errors: 2,
            reloads: 1,
            disconnected: 1,
            connections: 3,
            active_conns: 2,
            disconnects: 1,
            queue_depth: 0,
            max_queue_depth: 5,
            total_queue_wait: Duration::from_millis(30),
            max_queue_wait: Duration::from_millis(9),
            total_service: Duration::from_millis(80),
            index_reuse_hits: 6,
            per_shard: vec![ShardServeStats {
                shard: "g".into(),
                served: 8,
                shed: 1,
                search_nodes: 1234,
                index_reuse_hits: 6,
                reloads: 1,
            }],
        };
        let line = encode_stream_event(&StreamEvent::Stats(stats));
        let value: Value = serde_json::from_str(&line).unwrap();
        let stats = &value["stats"];
        assert_eq!(stats["completed"].as_u64(), Some(8));
        assert_eq!(stats["shed"].as_u64(), Some(1));
        assert_eq!(stats["reloads"].as_u64(), Some(1));
        assert_eq!(stats["disconnected"].as_u64(), Some(1));
        assert_eq!(stats["connections"].as_u64(), Some(3));
        assert_eq!(stats["active_conns"].as_u64(), Some(2));
        assert_eq!(stats["disconnects"].as_u64(), Some(1));
        assert_eq!(stats["max_queue_depth"].as_u64(), Some(5));
        let shard = &stats["shards"].as_array().unwrap()[0];
        assert_eq!(shard["graph"].as_str(), Some("g"));
        assert_eq!(shard["search_nodes"].as_u64(), Some(1234));
    }
}
