//! The resident serve loop: a long-running request stream with
//! cross-batch EDF admission control, per-tenant fairness, bounded-depth
//! backpressure, load-shedding, and graceful drain/reload.
//!
//! # How it differs from [`BatchExecutor`](crate::BatchExecutor)
//!
//! `run_batch` drains one `Vec` of requests and returns; deadline order
//! only exists *within* that call. A [`StreamServer`] stays up: requests
//! arrive one JSONL line at a time (from stdin, or from N concurrent
//! socket clients behind the `socket` feature — see `crate::socket`),
//! enter one **global admission queue** shared by every request ever
//! admitted, and responses are emitted as they complete. The admission
//! queue is where the service semantics live:
//!
//! * **Cross-batch EDF.** The queue is ordered by absolute deadline
//!   (admission instant + `deadline_ms`), earliest first; deadline-free
//!   requests run after every deadlined one, FIFO among themselves. A
//!   tight-deadline request admitted *later* overtakes slack requests
//!   already queued — the property `run_batch` could only give within
//!   one batch.
//! * **Per-tenant fairness.** EDF alone lets one hot shard starve the
//!   rest (its requests can always carry the soonest deadlines). The
//!   queue therefore keys sub-queues by shard and caps how many
//!   *consecutive* pops one shard may win while another shard has work
//!   waiting ([`StreamConfig::fairness_burst`]); when the cap trips, the
//!   best other shard's head runs next.
//! * **Bounded depth + backpressure.** The queue holds at most
//!   [`StreamConfig::queue_depth`] requests; when full, admission blocks,
//!   which propagates backpressure to the input (a pipe writer stalls).
//!   Memory is bounded no matter how fast requests arrive.
//! * **Load-shedding.** A request whose deadline budget is already
//!   exhausted — zero on arrival, or expired while queued — is **shed**:
//!   rejected with a typed wire error (`"error_kind": "shed"`), never
//!   executed, and never allowed to perturb other requests.
//! * **Drain/reload.** Control lines swap a shard's graph without
//!   dropping anything: requests bind to their shard's engine session
//!   *at admission*, so everything admitted before the reload finishes
//!   on the old session while later admissions see the new graph (see
//!   [`ShardedFleet::reload_shard_from_store`]).
//!
//! The wire schema (request, control, error, ack and stats lines) is
//! implemented in [`crate::jsonl`] and documented in `docs/SERVING.md`.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

// Synchronisation goes through the mbb-conc facade: std-backed in
// normal builds, model-checked under `RUSTFLAGS="--cfg mbb_conc"`
// (see tests/conc_models.rs and docs/CONCURRENCY.md).
use mbb_conc::sync::{Condvar, Mutex};

use mbb_core::engine::MbbEngine;
use mbb_core::resolve_threads;
use mbb_core::IndexStats;
use mbb_obs as obs;
use mbb_store::GraphStore;
use std::sync::Arc;

use crate::batch::{execute_guarded, rejected, validate};
use crate::fleet::ShardedFleet;
use crate::jsonl::{encode_stream_event, parse_stream_line, ControlRequest, StreamLine};
use crate::request::{QueryRequest, QueryResponse};

// ---------------------------------------------------------------------
// Configuration.

/// Tuning knobs of a [`StreamServer`].
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Worker threads executing queries (`0` = one per core, the
    /// workspace-wide thread-knob convention).
    pub workers: usize,
    /// Maximum queued (admitted but not yet executing) requests.
    /// Admission blocks when the queue is full — backpressure, not
    /// unbounded memory. Clamped to at least 1.
    pub queue_depth: usize,
    /// Maximum consecutive pops one shard may win while another shard
    /// has queued work; `0` disables the fairness cap (pure EDF).
    pub fairness_burst: usize,
    /// Emit a final [`StreamEvent::Stats`] when the input ends.
    pub stats_on_exit: bool,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            workers: 1,
            queue_depth: 1024,
            fairness_burst: 8,
            stats_on_exit: false,
        }
    }
}

// ---------------------------------------------------------------------
// Events.

/// What a reload actually did, for the ack line.
#[derive(Debug, Clone)]
pub struct ReloadOutcome {
    /// Load provenance + timing, as rendered by `LoadedGraph::describe`.
    pub detail: String,
    /// True when the loaded graph was identical to the served one and the
    /// warm session was forked instead of rebuilt.
    pub forked: bool,
}

/// One output event of the resident loop — each becomes exactly one
/// JSONL line on the wire ([`crate::jsonl::encode_stream_event`]).
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// An executed request's response — or a validation/routing
    /// rejection ([`QueryOutcome::Rejected`](crate::QueryOutcome::Rejected),
    /// wire `"error_kind": "invalid"`).
    Response(Box<QueryResponse>),
    /// A request shed by admission control: its deadline budget was
    /// already exhausted, so it was never executed.
    Shed {
        /// The request's id, echoed.
        id: u64,
        /// The shard it would have run on.
        graph: Option<String>,
        /// The request's kind label.
        kind: &'static str,
        /// Why it was shed.
        reason: String,
    },
    /// An input line that was not valid JSON / not a valid request.
    ParseError {
        /// 1-based input line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A queued request cancelled because its originating connection
    /// disconnected before dispatch (socket mode). Never executed; in
    /// practice the line is undeliverable (the connection is gone), so
    /// this event mostly feeds the `disconnected` counter and embedded
    /// sinks.
    Disconnected {
        /// The request's id, echoed.
        id: u64,
        /// The shard it would have run on.
        graph: Option<String>,
        /// The request's kind label.
        kind: &'static str,
        /// Why it was dropped.
        reason: String,
    },
    /// Answer to a `reload` control line.
    ReloadAck {
        /// The shard that was (or failed to be) reloaded.
        graph: String,
        /// The swap outcome, or the load error.
        result: Result<ReloadOutcome, String>,
    },
    /// Answer to a `drain` control line: everything admitted before it
    /// has completed.
    Drained {
        /// Requests retired (executed, shed, or disconnected) so far.
        completed: u64,
    },
    /// Answer to a `stats` control line (or the final end-of-input
    /// snapshot when [`StreamConfig::stats_on_exit`] is set).
    Stats(ServeStats),
    /// Answer to a `metrics` control line: the full observability
    /// snapshot — counters plus latency histogram quantiles.
    Metrics(Box<MetricsReport>),
}

// ---------------------------------------------------------------------
// Stats.

/// Per-shard slice of [`ServeStats`].
#[derive(Debug, Clone)]
pub struct ShardServeStats {
    /// The shard's graph id.
    pub shard: String,
    /// Requests executed on this shard.
    pub served: u64,
    /// Requests shed that were routed to this shard.
    pub shed: u64,
    /// Search nodes explored by this shard's executed requests.
    pub search_nodes: u64,
    /// Cached-index reuse hits scored on this shard's current session
    /// (reset by a reload — a fresh session starts counting from zero).
    pub index_reuse_hits: u64,
    /// Engine swaps this shard has seen.
    pub reloads: u64,
}

/// Snapshot of the resident loop's counters — the stream-mode analogue
/// of [`BatchStats`](crate::BatchStats), built from the same sources
/// (engine index counters, per-request queue-wait/service timings,
/// search-node totals).
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Requests admitted to the queue (excludes rejects and sheds at
    /// admission).
    pub admitted: u64,
    /// Requests executed to a response.
    pub completed: u64,
    /// Requests shed (admission or dispatch) — never executed.
    pub shed: u64,
    /// Requests rejected before queueing (routing/validation).
    pub rejected: u64,
    /// Input lines that failed to parse.
    pub parse_errors: u64,
    /// Shard engine swaps performed.
    pub reloads: u64,
    /// Requests cancelled (queued or popped, never executed) because
    /// their originating connection disconnected.
    pub disconnected: u64,
    /// Socket connections accepted since server start (0 in stdin mode).
    pub connections: u64,
    /// Socket connections currently open.
    pub active_conns: u64,
    /// Connections that ended abruptly (read error, or a write failure
    /// detected by the connection's pump) rather than by a clean EOF.
    pub disconnects: u64,
    /// Requests queued at snapshot time.
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Sum of per-request queue waits.
    pub total_queue_wait: Duration,
    /// The worst single queue wait.
    pub max_queue_wait: Duration,
    /// Sum of per-request service times.
    pub total_service: Duration,
    /// Cached-index reuse hits across all shards since server start
    /// (per-shard counters reset on reload).
    pub index_reuse_hits: u64,
    /// Per-shard breakdown, in fleet shard order.
    pub per_shard: Vec<ShardServeStats>,
}

/// The `{"control": "metrics"}` payload: the plain [`ServeStats`]
/// counters (wire-compatible with the `stats` verb) plus the
/// log-bucketed latency distributions the totals can't express. The
/// histograms live on the [`Admission`] queue and are recorded by
/// [`Admission::finish`] from the same per-request durations that feed
/// `total_queue_wait` / `total_service`, so the two views always agree
/// on `count` and `sum`.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// The counter snapshot, identical to a `stats` answer.
    pub stats: ServeStats,
    /// Admission-to-dispatch wait distribution (nanosecond values).
    pub queue_wait: obs::HistogramSnapshot,
    /// Dispatch-to-response service-time distribution (nanosecond
    /// values).
    pub service: obs::HistogramSnapshot,
    /// Span records dropped by full per-thread rings since tracing was
    /// enabled (0 when tracing is off).
    pub spans_dropped: u64,
}

// ---------------------------------------------------------------------
// The admission queue.

/// One admitted request, bound to the engine session that was current at
/// admission time (reload safety: the binding never changes afterwards).
///
/// Public but `#[doc(hidden)]`: the `conc_models` interleaving tests
/// construct jobs directly to drive the real queue under the model
/// scheduler.
#[doc(hidden)]
pub struct StreamJob {
    request: QueryRequest,
    shard: usize,
    shard_id: String,
    engine: Arc<MbbEngine>,
    deadline: Option<Instant>,
    admitted: Instant,
    seq: u64,
    /// The originating connection ([`crate::mux::LOCAL_CONN`] for the
    /// local stdin stream) — the response mux routes by this.
    conn: u64,
}

impl StreamJob {
    /// Builds a job directly, bypassing routing/validation — model-check
    /// and unit-test harness only. Timing fields are caller-fixed so
    /// model closures stay schedule-deterministic.
    #[doc(hidden)]
    pub fn synthetic(
        request: QueryRequest,
        shard: usize,
        shard_id: String,
        engine: Arc<MbbEngine>,
        deadline: Option<Instant>,
        admitted: Instant,
    ) -> StreamJob {
        StreamJob {
            request,
            shard,
            shard_id,
            engine,
            deadline,
            admitted,
            seq: 0, // assigned under the queue lock
            conn: crate::mux::LOCAL_CONN,
        }
    }

    /// Re-binds a synthetic job to a connection id (tests/models only —
    /// the serve paths set the id at admission).
    #[doc(hidden)]
    pub fn with_conn(mut self, conn: u64) -> StreamJob {
        self.conn = conn;
        self
    }

    /// The request id this job carries.
    #[doc(hidden)]
    pub fn id(&self) -> u64 {
        self.request.id
    }

    /// The shard index the job is routed to.
    #[doc(hidden)]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The absolute deadline, if the request carried a budget.
    #[doc(hidden)]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The originating connection id.
    #[doc(hidden)]
    pub fn conn(&self) -> u64 {
        self.conn
    }

    /// The typed event reporting this job as cancelled-by-disconnect.
    #[doc(hidden)]
    pub fn disconnect_event(&self) -> StreamEvent {
        StreamEvent::Disconnected {
            id: self.request.id,
            graph: Some(self.shard_id.clone()),
            kind: self.request.kind.label(),
            reason: "originating connection disconnected".to_string(),
        }
    }
}

/// Heap entry: max-heap orders "greater = scheduled sooner", so soonest
/// deadline wins, `None` deadlines run after every armed one, and ties
/// fall back to admission order.
struct Pending(StreamJob);

impl Pending {
    fn key(&self) -> (Option<Instant>, u64) {
        (self.0.deadline, self.0.seq)
    }
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        match (self.0.deadline, other.0.deadline) {
            (Some(a), Some(b)) => b.cmp(&a),
            (Some(_), None) => CmpOrdering::Greater,
            (None, Some(_)) => CmpOrdering::Less,
            (None, None) => CmpOrdering::Equal,
        }
        .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// True when head key `a` schedules before head key `b` (EDF with `None`
/// last, FIFO tie-break).
fn schedules_before(a: (Option<Instant>, u64), b: (Option<Instant>, u64)) -> bool {
    match (a.0, b.0) {
        (Some(x), Some(y)) => (x, a.1) < (y, b.1),
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => a.1 < b.1,
    }
}

struct QueueState {
    /// One EDF sub-queue per shard (the fairness key is the tenant =
    /// graph id = shard).
    heaps: Vec<BinaryHeap<Pending>>,
    depth: usize,
    in_flight: usize,
    closed: bool,
    seq: u64,
    /// Fairness bookkeeping: the shard that won the last pop and how
    /// many consecutive pops it has won.
    last_shard: usize,
    run_length: usize,
    // Counters (all mutated under this one lock; the loop is I/O- and
    // solver-bound, so contention here is negligible).
    admitted: u64,
    completed: u64,
    shed: u64,
    rejected: u64,
    parse_errors: u64,
    /// Requests cancelled because their connection disconnected.
    disconnected: u64,
    /// Connection lifecycle counters (socket mode; zero over stdin).
    connections: u64,
    closed_conns: u64,
    disconnects: u64,
    max_depth: usize,
    total_queue_wait: Duration,
    max_queue_wait: Duration,
    total_service: Duration,
    served: Vec<(u64, u64, u64)>, // per shard: (served, shed, search nodes)
}

/// How a popped job retired — applied to the queue counters by
/// [`Admission::finish`]. A typed enum (not a closure over the private
/// `QueueState`) so the model-check tests can finish jobs the same way
/// the real workers do.
#[doc(hidden)]
#[derive(Debug, Clone, Copy)]
pub enum Completion {
    /// Retired without touching counters (synthetic pops in tests).
    Untracked,
    /// Shed at dispatch: the deadline expired while queued.
    Shed {
        /// The shard the job was routed to.
        shard: usize,
    },
    /// Executed to a response.
    Executed {
        /// The shard the job ran on.
        shard: usize,
        /// Search nodes the solver explored.
        search_nodes: u64,
        /// Admission-to-dispatch wait.
        queue_wait: Duration,
        /// Dispatch-to-response time.
        service: Duration,
    },
    /// Popped with a dead originating connection: never executed, its
    /// would-be response had nowhere to go.
    Disconnected,
}

/// Observable queue counters for tests and model checks (the public
/// [`ServeStats`] is the wire-facing superset).
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSnapshot {
    pub admitted: u64,
    pub completed: u64,
    pub shed: u64,
    pub rejected: u64,
    pub disconnected: u64,
    pub depth: usize,
    pub in_flight: usize,
    pub max_depth: usize,
}

impl QueueSnapshot {
    /// The conservation law every snapshot must satisfy: everything
    /// admitted is either retired (completed, shed, or cancelled by a
    /// disconnect) or still inside the queue/workers. `rejected` is
    /// deliberately absent — rejection happens *before* admission.
    /// Model-checked at every quiescent point in
    /// `tests/conc_models.rs`.
    pub fn is_balanced(&self) -> bool {
        self.admitted
            == self.completed + self.shed + self.disconnected + (self.depth + self.in_flight) as u64
    }
}

/// The shared state of one `serve` call: the bounded admission queue
/// plus its three wait conditions.
///
/// `#[doc(hidden)]` public: the `conc_models` tests model-check this
/// exact type (not a copy) under `--cfg mbb_conc`.
#[doc(hidden)]
pub struct Admission {
    state: Mutex<QueueState>,
    /// Admission waits here when the queue is full (backpressure).
    space: Condvar,
    /// Workers wait here when the queue is empty.
    work: Condvar,
    /// Drain waits here for `depth == 0 && in_flight == 0`.
    idle: Condvar,
    depth_limit: usize,
    fairness_burst: usize,
    /// Latency distributions, recorded by [`finish`](Self::finish) from
    /// the same durations that feed the `total_*` counters. Lock-free
    /// (plain atomics) — kept outside `state` so recording never extends
    /// the queue lock's hold time.
    hist_queue_wait: obs::Histogram,
    hist_service: obs::Histogram,
}

impl Admission {
    #[doc(hidden)]
    pub fn new(shards: usize, config: &StreamConfig) -> Admission {
        Admission {
            state: Mutex::new(QueueState {
                heaps: (0..shards).map(|_| BinaryHeap::new()).collect(),
                depth: 0,
                in_flight: 0,
                closed: false,
                seq: 0,
                last_shard: usize::MAX,
                run_length: 0,
                admitted: 0,
                completed: 0,
                shed: 0,
                rejected: 0,
                parse_errors: 0,
                disconnected: 0,
                connections: 0,
                closed_conns: 0,
                disconnects: 0,
                max_depth: 0,
                total_queue_wait: Duration::ZERO,
                max_queue_wait: Duration::ZERO,
                total_service: Duration::ZERO,
                served: vec![(0, 0, 0); shards],
            }),
            space: Condvar::new(),
            work: Condvar::new(),
            idle: Condvar::new(),
            depth_limit: config.queue_depth.max(1),
            fairness_burst: config.fairness_burst,
            hist_queue_wait: obs::Histogram::new(),
            hist_service: obs::Histogram::new(),
        }
    }

    /// Blocks until the queue has space, then enqueues (backpressure).
    #[doc(hidden)]
    pub fn push(&self, mut job: StreamJob) {
        let mut state = self.state.lock();
        while state.depth >= self.depth_limit {
            state = self.space.wait(state);
        }
        job.seq = state.seq;
        state.seq += 1;
        state.depth += 1;
        state.admitted += 1;
        state.max_depth = state.max_depth.max(state.depth);
        let shard = job.shard;
        state.heaps[shard].push(Pending(job));
        drop(state);
        self.work.notify_one();
    }

    /// Picks the next shard to serve: the one whose head schedules
    /// first, unless that shard has exhausted its fairness burst while
    /// another shard waits — then the best *other* shard wins the slot.
    fn pick_shard(&self, state: &mut QueueState) -> Option<usize> {
        let head = |state: &QueueState, i: usize| state.heaps[i].peek().map(Pending::key);
        let best_of = |state: &QueueState, skip: Option<usize>| -> Option<usize> {
            let mut best: Option<(usize, (Option<Instant>, u64))> = None;
            for i in 0..state.heaps.len() {
                if Some(i) == skip {
                    continue;
                }
                if let Some(key) = head(state, i) {
                    if best.is_none_or(|(_, b)| schedules_before(key, b)) {
                        best = Some((i, key));
                    }
                }
            }
            best.map(|(i, _)| i)
        };
        let mut pick = best_of(state, None)?;
        if self.fairness_burst > 0
            && pick == state.last_shard
            && state.run_length >= self.fairness_burst
        {
            if let Some(other) = best_of(state, Some(pick)) {
                pick = other;
            }
        }
        if pick == state.last_shard {
            state.run_length += 1;
        } else {
            state.last_shard = pick;
            state.run_length = 1;
        }
        Some(pick)
    }

    /// Blocks for the next job; `None` means closed-and-empty (worker
    /// exits).
    #[doc(hidden)]
    pub fn pop(&self) -> Option<StreamJob> {
        let mut state = self.state.lock();
        loop {
            if let Some(shard) = self.pick_shard(&mut state) {
                // `pick_shard` only returns shards with a non-empty
                // heap, but a wire-facing worker must not panic on the
                // impossible case — re-evaluate instead.
                let Some(pending) = state.heaps[shard].pop() else {
                    continue;
                };
                state.depth -= 1;
                state.in_flight += 1;
                drop(state);
                self.space.notify_one();
                return Some(pending.0);
            }
            if state.closed {
                return None;
            }
            state = self.work.wait(state);
        }
    }

    /// Marks one popped job finished, applies its counter updates, and
    /// wakes any drain waiter.
    #[doc(hidden)]
    pub fn finish(&self, completion: Completion) {
        // Histogram recording happens before the lock: the histograms
        // are atomic and must not lengthen the critical section.
        if let Completion::Executed {
            queue_wait,
            service,
            ..
        } = completion
        {
            self.hist_queue_wait.record_duration(queue_wait);
            self.hist_service.record_duration(service);
        }
        let mut state = self.state.lock();
        match completion {
            Completion::Untracked => {}
            Completion::Shed { shard } => {
                state.shed += 1;
                state.served[shard].1 += 1;
            }
            Completion::Executed {
                shard,
                search_nodes,
                queue_wait,
                service,
            } => {
                state.completed += 1;
                state.served[shard].0 += 1;
                state.served[shard].2 += search_nodes;
                state.total_queue_wait += queue_wait;
                state.max_queue_wait = state.max_queue_wait.max(queue_wait);
                state.total_service += service;
            }
            Completion::Disconnected => {
                state.disconnected += 1;
            }
        }
        state.in_flight -= 1;
        if state.depth == 0 && state.in_flight == 0 {
            self.idle.notify_all();
        }
    }

    /// Removes every queued (not yet popped) job admitted by `conn` and
    /// returns them — called when a connection disconnects abruptly.
    /// The cancelled jobs count as `disconnected`, their queue slots
    /// free immediately (waking blocked producers), and a drain waiting
    /// on quiescence observes them as retired. In-flight jobs are *not*
    /// touched: they finish on their worker and the response mux drops
    /// the undeliverable lines.
    #[doc(hidden)]
    pub fn cancel_conn(&self, conn: u64) -> Vec<StreamJob> {
        let mut state = self.state.lock();
        let mut cancelled = Vec::new();
        let shard_count = state.heaps.len();
        for shard in 0..shard_count {
            let heap = std::mem::take(&mut state.heaps[shard]);
            let (gone, keep): (Vec<Pending>, Vec<Pending>) =
                heap.into_vec().into_iter().partition(|p| p.0.conn == conn);
            state.heaps[shard] = keep.into_iter().collect();
            cancelled.extend(gone.into_iter().map(|p| p.0));
        }
        // Cancellation preserves EDF order among survivors (heap rebuilt
        // from the same keys); only the counters change.
        let n = cancelled.len();
        state.depth -= n;
        state.disconnected += n as u64;
        let quiescent = state.depth == 0 && state.in_flight == 0;
        drop(state);
        if n > 0 {
            self.space.notify_all();
            if quiescent {
                self.idle.notify_all();
            }
        }
        cancelled.sort_by_key(|job| job.seq);
        cancelled
    }

    /// Connection lifecycle accounting (socket front-end).
    #[doc(hidden)]
    pub fn note_conn_opened(&self) {
        self.state.lock().connections += 1;
    }

    /// Marks one connection closed; `abrupt` distinguishes a detected
    /// disconnect from a clean EOF.
    #[doc(hidden)]
    pub fn note_conn_closed(&self, abrupt: bool) {
        let mut state = self.state.lock();
        state.closed_conns += 1;
        if abrupt {
            state.disconnects += 1;
        }
    }

    /// Counts one unparseable input line (the reader emits the event).
    #[doc(hidden)]
    pub fn note_parse_error(&self) {
        self.state.lock().parse_errors += 1;
    }

    /// Blocks until everything admitted so far has completed.
    #[doc(hidden)]
    pub fn drain(&self) -> u64 {
        let mut state = self.state.lock();
        while state.depth > 0 || state.in_flight > 0 {
            state = self.idle.wait(state);
        }
        state.completed + state.shed + state.disconnected
    }

    #[doc(hidden)]
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.work.notify_all();
    }

    /// Snapshot of the admission-to-dispatch wait distribution.
    #[doc(hidden)]
    pub fn queue_wait_histogram(&self) -> obs::HistogramSnapshot {
        self.hist_queue_wait.snapshot()
    }

    /// Snapshot of the dispatch-to-response service-time distribution.
    #[doc(hidden)]
    pub fn service_histogram(&self) -> obs::HistogramSnapshot {
        self.hist_service.snapshot()
    }

    /// Counter snapshot for tests and model checks.
    #[doc(hidden)]
    pub fn queue_snapshot(&self) -> QueueSnapshot {
        let state = self.state.lock();
        QueueSnapshot {
            admitted: state.admitted,
            completed: state.completed,
            shed: state.shed,
            rejected: state.rejected,
            disconnected: state.disconnected,
            depth: state.depth,
            in_flight: state.in_flight,
            max_depth: state.max_depth,
        }
    }
}

// ---------------------------------------------------------------------
// The server.

/// A resident query server over a [`ShardedFleet`]: feed it a JSONL
/// request stream and it emits one JSONL event per request (plus control
/// acks), applying cross-batch EDF admission, per-tenant fairness,
/// bounded-depth backpressure, load-shedding and hot shard reloads.
///
/// ```
/// use mbb_serve::stream::{StreamConfig, StreamEvent, StreamServer};
/// use mbb_serve::ShardedFleet;
///
/// let mut fleet = ShardedFleet::new();
/// fleet.add_shard("g", mbb_bigraph::generators::uniform_edges(12, 12, 55, 1))?;
/// let server = StreamServer::new(fleet, StreamConfig::default());
///
/// let input = "{\"id\": 1, \"graph\": \"g\", \"kind\": \"solve\"}\n";
/// let mut out = Vec::new();
/// let stats = server.serve(input.as_bytes(), &mut out)?;
/// assert_eq!(stats.completed, 1);
/// assert!(String::from_utf8(out)?.contains("\"half_size\""));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StreamServer {
    fleet: Arc<ShardedFleet>,
    store: GraphStore,
    config: StreamConfig,
}

impl StreamServer {
    /// A server over `fleet`. Reload control lines resolve graph sources
    /// through a [`GraphStore::from_env`] store;
    /// [`with_store`](Self::with_store) overrides it.
    pub fn new(fleet: ShardedFleet, config: StreamConfig) -> StreamServer {
        StreamServer {
            fleet: Arc::new(fleet),
            store: GraphStore::from_env(),
            config,
        }
    }

    /// Replaces the store used by `reload` control lines.
    pub fn with_store(mut self, store: GraphStore) -> StreamServer {
        self.store = store;
        self
    }

    /// The fleet this server schedules over.
    pub fn fleet(&self) -> &ShardedFleet {
        &self.fleet
    }

    /// The server's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Runs the resident loop over `input`, writing one JSONL line per
    /// [`StreamEvent`] to `output` as events complete (completion order,
    /// not admission order — each line carries its request `id`). Returns
    /// the final stats snapshot; the first write error (if any) is
    /// reported after the stream has been drained.
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        input: R,
        output: W,
    ) -> std::io::Result<ServeStats> {
        let sink = Mutex::new((output, None::<std::io::Error>));
        let stats = self.serve_with(input, |event| {
            // Runs on the worker that completed the request, inside its
            // span context — the encode span inherits the request ids.
            let encode_span = obs::span(obs::Stage::Encode);
            let line = encode_stream_event(&event);
            drop(encode_span);
            let mut guard = sink.lock();
            if guard.1.is_none() {
                let result = guard
                    .0
                    .write_all(line.as_bytes())
                    .and_then(|()| guard.0.write_all(b"\n"))
                    .and_then(|()| guard.0.flush());
                if let Err(e) = result {
                    guard.1 = Some(e);
                }
            }
        });
        match sink.into_inner().1 {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }

    /// Runs the resident loop over `input`, delivering typed
    /// [`StreamEvent`]s to `sink` (called concurrently from worker
    /// threads — completion order). This is [`serve`](Self::serve)
    /// without the wire encoding; tests and embedding services use it to
    /// observe responses directly.
    pub fn serve_with<R: BufRead>(
        &self,
        input: R,
        sink: impl Fn(StreamEvent) + Sync,
    ) -> ServeStats {
        let admission = self.new_admission();
        let baselines = self.baselines();
        let workers = resolve_threads(self.config.workers);
        // Local mode: one implicit always-alive connection.
        let conn_sink = |_conn: u64, event: StreamEvent| sink(event);
        let alive = |_conn: u64| true;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(&admission, &conn_sink, &alive));
            }
            self.reader_loop(input, &admission, &baselines, &conn_sink);
            admission.close();
            // Scope exit joins the workers: they drain the queue first.
        });

        let stats = self.snapshot(&admission, &baselines);
        if self.config.stats_on_exit {
            sink(StreamEvent::Stats(stats.clone()));
        }
        stats
    }

    /// The admission queue a serve loop (stdin or socket) runs over.
    pub(crate) fn new_admission(&self) -> Admission {
        Admission::new(self.fleet.len(), &self.config)
    }

    /// Index-reuse baseline per shard; refreshed on reload because a
    /// swapped session restarts its counters at zero.
    pub(crate) fn baselines(&self) -> Mutex<Vec<IndexStats>> {
        Mutex::new(self.fleet.index_stats())
    }

    /// The admission thread: parses lines, routes/validates/sheds, and
    /// handles control requests inline (control lines take effect in
    /// input order relative to the admissions around them).
    fn reader_loop<R: BufRead>(
        &self,
        input: R,
        admission: &Admission,
        baselines: &Mutex<Vec<IndexStats>>,
        sink: &(impl Fn(u64, StreamEvent) + Sync),
    ) {
        for (index, line) in input.lines().enumerate() {
            let line_no = index + 1;
            let line = match line {
                Ok(line) => line,
                // An unreadable input stream ends the loop (EOF
                // semantics); everything admitted still completes.
                Err(_) => break,
            };
            self.process_line(
                &line,
                line_no,
                crate::mux::LOCAL_CONN,
                admission,
                baselines,
                sink,
                || {},
            );
        }
    }

    /// Handles one input line on behalf of connection `conn`: comments
    /// and blanks are skipped, parse failures become typed events,
    /// control verbs run inline, and requests are admitted.
    /// `on_request` runs for request lines *before* admission (and
    /// before any synchronous rejection/shed event) — the socket reader
    /// uses it to open the connection's outstanding-event bracket
    /// race-free.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn process_line(
        &self,
        line: &str,
        line_no: usize,
        conn: u64,
        admission: &Admission,
        baselines: &Mutex<Vec<IndexStats>>,
        sink: &(impl Fn(u64, StreamEvent) + Sync),
        on_request: impl FnOnce(),
    ) {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return;
        }
        // Request id is not known until the line parses; the parse span
        // is keyed by connection alone (request 0).
        let parse_span = obs::span_for(obs::Stage::Parse, 0, conn);
        let parsed = parse_stream_line(trimmed, line_no);
        drop(parse_span);
        match parsed {
            Err(e) => {
                admission.note_parse_error();
                sink(
                    conn,
                    StreamEvent::ParseError {
                        line: line_no,
                        message: e.to_string(),
                    },
                );
            }
            Ok(StreamLine::Control(control)) => {
                self.handle_control(control, conn, admission, baselines, sink)
            }
            Ok(StreamLine::Request(request)) => {
                on_request();
                self.admit(request, conn, admission, sink)
            }
        }
    }

    fn admit(
        &self,
        request: QueryRequest,
        conn: u64,
        admission: &Admission,
        sink: &(impl Fn(u64, StreamEvent) + Sync),
    ) {
        let arrived = Instant::now();
        let shard = match self.fleet.route(&request) {
            Ok(shard) => shard,
            Err(e) => {
                admission.state.lock().rejected += 1;
                sink(
                    conn,
                    StreamEvent::Response(Box::new(rejected(&request, None, e.to_string()))),
                );
                return;
            }
        };
        // Binding happens here: the engine current at admission serves
        // this request, whatever reloads happen while it is queued.
        let engine = self.fleet.engine(shard);
        let shard_id = self.fleet.shards()[shard].id().to_string();
        if let Err(reason) = validate(engine.graph(), &request) {
            admission.state.lock().rejected += 1;
            sink(
                conn,
                StreamEvent::Response(Box::new(rejected(&request, Some(shard_id), reason))),
            );
            return;
        }
        // Admission-time shedding: a zero budget can never be met — the
        // request is dead on arrival and must not consume a queue slot.
        if request.deadline.is_some_and(|d| d.is_zero()) {
            let mut state = admission.state.lock();
            state.shed += 1;
            state.served[shard].1 += 1;
            drop(state);
            sink(
                conn,
                StreamEvent::Shed {
                    id: request.id,
                    graph: Some(shard_id),
                    kind: request.kind.label(),
                    reason: "deadline budget exhausted on arrival".to_string(),
                },
            );
            return;
        }
        let deadline = request.deadline.map(|d| arrived + d);
        // The admission-wait span covers the backpressure block inside
        // `push` (plus the negligible enqueue itself).
        let wait_span = obs::span_for(obs::Stage::AdmissionWait, request.id, conn);
        admission.push(StreamJob {
            request,
            shard,
            shard_id,
            engine,
            deadline,
            admitted: arrived,
            seq: 0, // assigned under the queue lock
            conn,
        });
        drop(wait_span);
    }

    fn handle_control(
        &self,
        control: ControlRequest,
        conn: u64,
        admission: &Admission,
        baselines: &Mutex<Vec<IndexStats>>,
        sink: &(impl Fn(u64, StreamEvent) + Sync),
    ) {
        match control {
            ControlRequest::Stats => {
                sink(
                    conn,
                    StreamEvent::Stats(self.snapshot(admission, baselines)),
                );
            }
            ControlRequest::Metrics => {
                let report = MetricsReport {
                    stats: self.snapshot(admission, baselines),
                    queue_wait: admission.queue_wait_histogram(),
                    service: admission.service_histogram(),
                    spans_dropped: obs::dropped_records(),
                };
                sink(conn, StreamEvent::Metrics(Box::new(report)));
            }
            ControlRequest::Drain => {
                let completed = admission.drain();
                sink(conn, StreamEvent::Drained { completed });
            }
            ControlRequest::Reload { graph, source } => {
                let result = self
                    .fleet
                    .reload_shard_from_store(&graph, &self.store, &source)
                    .map(|(loaded, forked)| {
                        if let Ok(index) = self.fleet.route_id(&graph) {
                            // The new session counts from zero; reset its
                            // reuse baseline so diffs stay meaningful.
                            baselines.lock()[index] = IndexStats::default();
                        }
                        ReloadOutcome {
                            detail: loaded.describe(),
                            forked,
                        }
                    })
                    .map_err(|e| e.to_string());
                sink(conn, StreamEvent::ReloadAck { graph, result });
            }
        }
    }

    pub(crate) fn snapshot(
        &self,
        admission: &Admission,
        baselines: &Mutex<Vec<IndexStats>>,
    ) -> ServeStats {
        // Lock-order contract (docs/lock_order.txt): shard engine
        // RwLocks strictly before the admission-queue mutex. All
        // fleet reads — `index_stats` takes each shard's engine read
        // lock — happen up front, before `admission.state` is held.
        let after = self.fleet.index_stats();
        let total_reloads = self.fleet.total_reloads();
        let shard_meta: Vec<(String, u64)> = self
            .fleet
            .shards()
            .iter()
            .map(|shard| (shard.id().to_string(), shard.reloads()))
            .collect();
        let state = admission.state.lock();
        let baselines = baselines.lock();
        let reuse = |b: u64, a: u64| a.saturating_sub(b);
        let per_shard: Vec<ShardServeStats> = shard_meta
            .into_iter()
            .zip(baselines.iter().zip(&after))
            .zip(&state.served)
            .map(
                |(((shard_id, reloads), (b, a)), &(served, shed, search_nodes))| ShardServeStats {
                    shard: shard_id,
                    served,
                    shed,
                    search_nodes,
                    index_reuse_hits: reuse(b.orders_reused, a.orders_reused)
                        + reuse(b.bicores_reused, a.bicores_reused)
                        + reuse(b.two_hops_reused, a.two_hops_reused),
                    reloads,
                },
            )
            .collect();
        ServeStats {
            admitted: state.admitted,
            completed: state.completed,
            shed: state.shed,
            rejected: state.rejected,
            parse_errors: state.parse_errors,
            reloads: total_reloads,
            disconnected: state.disconnected,
            connections: state.connections,
            active_conns: state.connections - state.closed_conns,
            disconnects: state.disconnects,
            queue_depth: state.depth,
            max_queue_depth: state.max_depth,
            total_queue_wait: state.total_queue_wait,
            max_queue_wait: state.max_queue_wait,
            total_service: state.total_service,
            index_reuse_hits: per_shard.iter().map(|s| s.index_reuse_hits).sum(),
            per_shard,
        }
    }
}

/// One worker: pop, shed-or-execute, finish — until closed-and-empty.
///
/// `#[doc(hidden)]` public so the `conc_models` tests can run the real
/// worker body on model threads.
#[doc(hidden)]
pub fn worker_loop(
    admission: &Admission,
    sink: &(impl Fn(u64, StreamEvent) + Sync),
    alive: &(impl Fn(u64) -> bool + Sync),
) {
    while let Some(job) = admission.pop() {
        let started = Instant::now();
        // A job whose originating connection died while it was queued
        // is cancelled, not executed: the response could never be
        // delivered, so the cycles would be pure waste. The typed
        // event still flows to the sink for accounting.
        if !alive(job.conn) {
            let conn = job.conn;
            let event = job.disconnect_event();
            sink(conn, event);
            admission.finish(Completion::Disconnected);
            continue;
        }
        // Dispatch-time shedding: the budget expired while queued. The
        // engine would only return an empty DeadlineExceeded shell, so
        // the service refuses the work outright — cheaper, and a typed
        // signal the client can react to (back off, re-submit).
        if job.deadline.is_some_and(|d| d <= started) {
            let shard = job.shard;
            sink(
                job.conn,
                StreamEvent::Shed {
                    id: job.request.id,
                    graph: Some(job.shard_id),
                    kind: job.request.kind.label(),
                    reason: "deadline budget exhausted while queued".to_string(),
                },
            );
            admission.finish(Completion::Shed { shard });
            continue;
        }
        let queue_wait = started.duration_since(job.admitted);
        // All spans this worker emits while the job runs — including the
        // solver-stage spans inside `execute_guarded` — carry the
        // request/connection ids via the thread-local context.
        let ctx = obs::context(job.request.id, job.conn);
        obs::record(obs::Stage::QueueWait, job.admitted, started);
        let (outcome, termination, stats) =
            execute_guarded(&job.engine, &job.request, job.deadline);
        let finished = Instant::now();
        obs::record(obs::Stage::Execute, started, finished);
        let response = QueryResponse {
            id: job.request.id,
            shard: Some(job.shard_id),
            kind: job.request.kind.label(),
            outcome,
            termination,
            queue_wait,
            service: finished.duration_since(started),
            stats,
        };
        let shard = job.shard;
        let conn = job.conn;
        let search_nodes = response.search_nodes();
        let service = response.service;
        // The context outlives the sink call so the encode span (taken
        // inside wire-encoding sinks) inherits the ids too.
        sink(conn, StreamEvent::Response(Box::new(response)));
        drop(ctx);
        admission.finish(Completion::Executed {
            shard,
            search_nodes,
            queue_wait,
            service,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::QueryKind;
    use mbb_bigraph::generators;

    fn job(shard: usize, id: u64, deadline: Option<Duration>, now: Instant) -> StreamJob {
        StreamJob {
            request: QueryRequest::new(id, QueryKind::Solve),
            shard,
            shard_id: format!("s{shard}"),
            engine: Arc::new(MbbEngine::new(generators::uniform_edges(
                4,
                4,
                8,
                shard as u64,
            ))),
            deadline: deadline.map(|d| now + d),
            admitted: now,
            seq: 0,
            conn: crate::mux::LOCAL_CONN,
        }
    }

    fn pop_ids(admission: &Admission, n: usize) -> Vec<u64> {
        (0..n)
            .map(|_| {
                let job = admission.pop().unwrap();
                admission.finish(Completion::Untracked);
                job.request.id
            })
            .collect()
    }

    #[test]
    fn queue_is_edf_with_fifo_ties_across_admissions() {
        let config = StreamConfig::default();
        let admission = Admission::new(1, &config);
        let now = Instant::now();
        admission.push(job(0, 1, None, now));
        admission.push(job(0, 2, Some(Duration::from_secs(30)), now));
        // Later arrival, tighter deadline: must overtake both.
        admission.push(job(0, 3, Some(Duration::from_secs(1)), now));
        admission.push(job(0, 4, None, now));
        assert_eq!(pop_ids(&admission, 4), vec![3, 2, 1, 4]);
    }

    #[test]
    fn fairness_burst_caps_consecutive_pops_per_shard() {
        let config = StreamConfig {
            fairness_burst: 2,
            ..StreamConfig::default()
        };
        let admission = Admission::new(2, &config);
        let now = Instant::now();
        // Shard 0 floods with the tightest deadlines; shard 1 queues two
        // slack requests that pure EDF would starve until the end.
        for i in 0..6u64 {
            admission.push(job(0, i, Some(Duration::from_millis(10 + i)), now));
        }
        admission.push(job(1, 100, Some(Duration::from_secs(5)), now));
        admission.push(job(1, 101, Some(Duration::from_secs(6)), now));
        let order = pop_ids(&admission, 8);
        let first_tenant_1 = order.iter().position(|&id| id >= 100).unwrap();
        assert!(
            first_tenant_1 <= 2,
            "shard 1 must be served after at most fairness_burst=2 consecutive shard-0 pops: {order:?}"
        );
        // All eight still run, and shard 0's internal order stays EDF.
        let shard0: Vec<u64> = order.iter().copied().filter(|&id| id < 100).collect();
        assert_eq!(shard0, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn fairness_zero_disables_the_cap() {
        let config = StreamConfig {
            fairness_burst: 0,
            ..StreamConfig::default()
        };
        let admission = Admission::new(2, &config);
        let now = Instant::now();
        for i in 0..4u64 {
            admission.push(job(0, i, Some(Duration::from_millis(10 + i)), now));
        }
        admission.push(job(1, 100, Some(Duration::from_secs(5)), now));
        assert_eq!(pop_ids(&admission, 5), vec![0, 1, 2, 3, 100]);
    }

    #[test]
    fn server_serves_a_small_stream_end_to_end() {
        let mut fleet = ShardedFleet::new();
        fleet
            .add_shard("g", generators::uniform_edges(10, 10, 45, 3))
            .unwrap();
        let server = StreamServer::new(fleet, StreamConfig::default());
        let input = "\
{\"id\": 1, \"graph\": \"g\", \"kind\": \"solve\"}\n\
# a comment line\n\
{\"id\": 2, \"graph\": \"g\", \"kind\": \"topk\", \"k\": 2}\n\
not json\n\
{\"id\": 3, \"graph\": \"nowhere\", \"kind\": \"solve\"}\n\
{\"control\": \"drain\"}\n\
{\"control\": \"stats\"}\n";
        let events = Mutex::new(Vec::new());
        let stats = server.serve_with(input.as_bytes(), |e| events.lock().push(e));
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.parse_errors, 1);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.queue_depth, 0);
        let events = events.into_inner();
        assert!(events
            .iter()
            .any(|e| matches!(e, StreamEvent::Drained { completed: 2 })));
        assert!(events.iter().any(|e| matches!(e, StreamEvent::Stats(_))));
        assert!(events
            .iter()
            .any(|e| matches!(e, StreamEvent::ParseError { line: 4, .. })));
    }

    #[test]
    fn cancel_conn_removes_only_that_connections_queued_jobs() {
        let config = StreamConfig::default();
        let admission = Admission::new(2, &config);
        let now = Instant::now();
        admission.push(job(0, 1, None, now).with_conn(7));
        admission.push(job(1, 2, None, now).with_conn(7));
        admission.push(job(0, 3, None, now).with_conn(8));
        admission.push(job(1, 4, Some(Duration::from_secs(1)), now).with_conn(7));
        let cancelled = admission.cancel_conn(7);
        let ids: Vec<u64> = cancelled.iter().map(|j| j.request.id).collect();
        assert_eq!(ids, vec![1, 2, 4], "cancelled in admission order");
        // The survivor still pops, EDF/queue accounting intact.
        assert_eq!(pop_ids(&admission, 1), vec![3]);
        let state = admission.state.lock();
        assert_eq!(state.disconnected, 3);
        assert_eq!(state.depth, 0);
    }

    #[test]
    fn cancel_conn_wakes_drain_waiters() {
        let config = StreamConfig::default();
        let admission = Admission::new(1, &config);
        let now = Instant::now();
        admission.push(job(0, 1, None, now).with_conn(5));
        std::thread::scope(|scope| {
            let drainer = scope.spawn(|| admission.drain());
            // Give the drainer a moment to block on the idle condvar.
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(admission.cancel_conn(5).len(), 1);
            assert_eq!(drainer.join().unwrap(), 1, "disconnected counts as retired");
        });
    }

    #[test]
    fn worker_skips_jobs_whose_connection_died() {
        let config = StreamConfig::default();
        let admission = Admission::new(1, &config);
        let now = Instant::now();
        admission.push(job(0, 1, None, now).with_conn(3));
        admission.push(job(0, 2, None, now).with_conn(4));
        admission.close();
        let events = Mutex::new(Vec::new());
        let sink = |conn: u64, event: StreamEvent| events.lock().push((conn, event));
        // Connection 3 is dead; 4 is alive.
        worker_loop(&admission, &sink, &|conn| conn != 3);
        let events = events.into_inner();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .any(|(conn, e)| *conn == 3 && matches!(e, StreamEvent::Disconnected { id: 1, .. })));
        assert!(events
            .iter()
            .any(|(conn, e)| *conn == 4 && matches!(e, StreamEvent::Response(r) if r.id == 2)));
        let state = admission.state.lock();
        assert_eq!(state.disconnected, 1);
        assert_eq!(state.completed, 1);
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_losing_requests() {
        let mut fleet = ShardedFleet::new();
        fleet
            .add_shard("g", generators::uniform_edges(10, 10, 45, 4))
            .unwrap();
        let server = StreamServer::new(
            fleet,
            StreamConfig {
                queue_depth: 1,
                ..StreamConfig::default()
            },
        );
        let input: String = (1..=6)
            .map(|i| format!("{{\"id\": {i}, \"graph\": \"g\", \"kind\": \"solve\"}}\n"))
            .collect();
        let responses = Mutex::new(0u64);
        let stats = server.serve_with(input.as_bytes(), |e| {
            if matches!(e, StreamEvent::Response(_)) {
                *responses.lock() += 1;
            }
        });
        assert_eq!(stats.completed, 6);
        assert_eq!(*responses.lock(), 6);
        assert!(stats.max_queue_depth <= 1, "{}", stats.max_queue_depth);
    }
}
