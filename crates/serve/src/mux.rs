//! Connection registry and per-connection response mux for the socket
//! front-end.
//!
//! Resident mode fans every client connection into **one** shared
//! admission queue ([`crate::stream::Admission`]), so worker threads
//! complete requests from different connections in an arbitrary
//! interleaving. This module is the return path: each connection owns a
//! [`Connection`] — an outbox queue drained by a dedicated pump thread
//! onto that connection's writer — and the [`ConnRegistry`] maps a
//! connection id (carried by every admitted job) back to it. A worker
//! never writes to a socket directly: it enqueues the encoded line on
//! the originating connection's outbox and moves on, so one
//! slow-reading client stalls only its own pump, never the worker pool
//! or a neighbour connection.
//!
//! Lifecycle, in the words of the serve loop:
//!
//! * [`Connection::begin`] / [`Connection::finish`] bracket each
//!   admitted request — `outstanding` counts events promised but not
//!   yet enqueued, which is what half-close has to wait for.
//! * [`Connection::await_idle`] blocks until `outstanding == 0` (all
//!   promised events enqueued) or the connection died; the reader calls
//!   it on EOF so a client that half-closed its write side still
//!   receives every response before the server closes the socket.
//! * [`Connection::close`] ends the pump *after* the outbox drains —
//!   the graceful path. [`Connection::mark_dead`] ends it immediately
//!   and discards the outbox — the abrupt-disconnect path (a failed
//!   write marks the connection dead from the pump itself).
//!
//! The module is compiled unconditionally (not gated behind the
//! `socket` feature): the `conc_models` suite model-checks these exact
//! types under `RUSTFLAGS="--cfg mbb_conc"`, where the `socket` feature
//! is off. All synchronisation goes through the `mbb-conc` facade for
//! that reason, and the file is in `mbb-lint`'s wire-panic scope — a
//! panic here would kill a pump or worker thread mid-session.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::Arc;

use mbb_conc::sync::{Condvar, Mutex};

/// The reserved connection id of the local (stdin/stdout) stream.
/// Always considered alive; the registry never allocates it.
pub const LOCAL_CONN: u64 = 0;

// ---------------------------------------------------------------------
// One connection.

struct ConnInner {
    /// Encoded JSONL lines waiting for the pump.
    outbox: VecDeque<String>,
    /// Request events promised (admitted) but not yet enqueued.
    outstanding: u64,
    /// Graceful end: pump exits once the outbox is empty.
    closed: bool,
    /// Abrupt end: pump exits now, outbox discarded, sends refused.
    dead: bool,
}

/// One client connection's server-side state: the response outbox, the
/// half-close bookkeeping, and the writer the pump drains into.
///
/// `W` is the write half of the transport — a socket in production, a
/// `Vec<u8>` in tests and model checks.
pub struct Connection<W: Write> {
    id: u64,
    inner: Mutex<ConnInner>,
    /// Pump waits here for outbox lines (or close/death).
    ready: Condvar,
    /// `await_idle` waits here for `outstanding == 0` (or death).
    idle: Condvar,
    writer: Mutex<W>,
}

impl<W: Write> Connection<W> {
    fn new(id: u64, writer: W) -> Connection<W> {
        Connection {
            id,
            inner: Mutex::new(ConnInner {
                outbox: VecDeque::new(),
                outstanding: 0,
                closed: false,
                dead: false,
            }),
            ready: Condvar::new(),
            idle: Condvar::new(),
            writer: Mutex::new(writer),
        }
    }

    /// The registry-assigned connection id carried by this connection's
    /// admitted jobs.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Promises one future terminal event (response, shed, or
    /// disconnect notice). Call **before** the request can reach a
    /// worker, or the matching [`finish`](Self::finish) could underflow
    /// past a racing [`await_idle`](Self::await_idle).
    pub fn begin(&self) {
        self.inner.lock().outstanding += 1;
    }

    /// Retires one promised event (its line is enqueued — or dropped,
    /// for a dead connection). Saturating: a stray `finish` without a
    /// `begin` must not wrap the half-close accounting on a wire path.
    pub fn finish(&self) {
        let mut inner = self.inner.lock();
        inner.outstanding = inner.outstanding.saturating_sub(1);
        if inner.outstanding == 0 {
            drop(inner);
            self.idle.notify_all();
        }
    }

    /// Enqueues one encoded line for the pump. Returns `false` (and
    /// drops the line) when the connection is closed or dead.
    pub fn send(&self, line: &str) -> bool {
        let mut inner = self.inner.lock();
        if inner.dead || inner.closed {
            return false;
        }
        inner.outbox.push_back(line.to_string());
        drop(inner);
        self.ready.notify_one();
        true
    }

    /// Blocks until every promised event has been enqueued
    /// (`outstanding == 0`) or the connection died. Returns `true` on
    /// the clean outcome — the half-close contract: EOF on the read
    /// side waits here, then [`close`](Self::close)s, so the pump still
    /// flushes everything the client is owed.
    pub fn await_idle(&self) -> bool {
        let mut inner = self.inner.lock();
        while inner.outstanding > 0 && !inner.dead {
            inner = self.idle.wait(inner);
        }
        !inner.dead
    }

    /// Graceful end: no further sends; the pump drains the outbox, then
    /// exits.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.ready.notify_all();
    }

    /// Abrupt end: discards queued lines, refuses further sends, wakes
    /// the pump and any `await_idle` waiter immediately.
    pub fn mark_dead(&self) {
        let mut inner = self.inner.lock();
        inner.dead = true;
        inner.outbox.clear();
        drop(inner);
        self.ready.notify_all();
        self.idle.notify_all();
    }

    /// True once [`mark_dead`](Self::mark_dead) ran (directly, or from
    /// the pump on a write error).
    pub fn is_dead(&self) -> bool {
        self.inner.lock().dead
    }

    /// The pump loop: dequeues lines and writes them (newline-framed,
    /// flushed per line) until the connection closes or dies. Run it on
    /// a dedicated thread per connection; a write error marks the
    /// connection dead, which is how an abrupt client disconnect is
    /// detected.
    pub fn pump(&self) {
        loop {
            let mut inner = self.inner.lock();
            while inner.outbox.is_empty() && !inner.closed && !inner.dead {
                inner = self.ready.wait(inner);
            }
            if inner.dead {
                return;
            }
            let Some(line) = inner.outbox.pop_front() else {
                // Empty and closed: drained, graceful exit.
                return;
            };
            drop(inner);
            // The pump thread has no request context; the outbox span is
            // keyed by connection alone (request 0).
            let span = mbb_obs::span_for(mbb_obs::Stage::Outbox, 0, self.id());
            let mut writer = self.writer.lock();
            let result = writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush());
            drop(writer);
            drop(span);
            if result.is_err() {
                self.mark_dead();
                return;
            }
        }
    }

    /// Runs `f` against the writer — tests and model checks inspect the
    /// bytes the pump produced.
    pub fn inspect_writer<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        f(&mut self.writer.lock())
    }
}

// ---------------------------------------------------------------------
// The registry.

struct RegistryInner<W: Write> {
    map: HashMap<u64, Arc<Connection<W>>>,
    next_id: u64,
}

/// Maps live connection ids to their [`Connection`]s — the route a
/// worker's sink takes from a job's connection id back to the socket
/// that submitted it.
pub struct ConnRegistry<W: Write> {
    conns: Mutex<RegistryInner<W>>,
}

impl<W: Write> Default for ConnRegistry<W> {
    fn default() -> ConnRegistry<W> {
        ConnRegistry::new()
    }
}

impl<W: Write> ConnRegistry<W> {
    /// An empty registry. Ids start at 1; [`LOCAL_CONN`] (0) is never
    /// allocated.
    pub fn new() -> ConnRegistry<W> {
        ConnRegistry {
            conns: Mutex::new(RegistryInner {
                map: HashMap::new(),
                next_id: LOCAL_CONN + 1,
            }),
        }
    }

    /// Registers a new connection around `writer` and returns it (also
    /// retained in the registry until [`deregister`](Self::deregister)).
    pub fn register(&self, writer: W) -> Arc<Connection<W>> {
        let mut inner = self.conns.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let conn = Arc::new(Connection::new(id, writer));
        inner.map.insert(id, Arc::clone(&conn));
        conn
    }

    /// Removes a connection; subsequent [`get`](Self::get)s for its id
    /// return `None` and its queued jobs count as disconnected when
    /// popped.
    pub fn deregister(&self, id: u64) -> Option<Arc<Connection<W>>> {
        self.conns.lock().map.remove(&id)
    }

    /// The connection currently registered under `id`.
    pub fn get(&self, id: u64) -> Option<Arc<Connection<W>>> {
        self.conns.lock().map.get(&id).map(Arc::clone)
    }

    /// Whether a job routed to `id` still has somewhere to deliver:
    /// [`LOCAL_CONN`] is always alive; a registered connection is alive
    /// until marked dead; an unregistered id is not.
    pub fn is_alive(&self, id: u64) -> bool {
        if id == LOCAL_CONN {
            return true;
        }
        match self.get(id) {
            Some(conn) => !conn.is_dead(),
            None => false,
        }
    }

    /// Currently registered connections.
    pub fn active(&self) -> usize {
        self.conns.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(conn: &Connection<Vec<u8>>) -> String {
        conn.inspect_writer(|w| String::from_utf8(w.clone()).unwrap())
    }

    #[test]
    fn pump_writes_lines_in_fifo_order_and_drains_on_close() {
        let registry: ConnRegistry<Vec<u8>> = ConnRegistry::new();
        let conn = registry.register(Vec::new());
        assert_eq!(conn.id(), 1);
        std::thread::scope(|scope| {
            let pump = {
                let conn = Arc::clone(&conn);
                scope.spawn(move || conn.pump())
            };
            for i in 0..50 {
                assert!(conn.send(&format!("line-{i}")));
            }
            conn.close();
            pump.join().unwrap();
        });
        let expected: String = (0..50).map(|i| format!("line-{i}\n")).collect();
        assert_eq!(text(&conn), expected);
        // Closed connections refuse further sends.
        assert!(!conn.send("late"));
    }

    #[test]
    fn no_cross_delivery_between_connections() {
        let registry: ConnRegistry<Vec<u8>> = ConnRegistry::new();
        let a = registry.register(Vec::new());
        let b = registry.register(Vec::new());
        assert_ne!(a.id(), b.id());
        std::thread::scope(|scope| {
            for conn in [&a, &b] {
                let conn = Arc::clone(conn);
                scope.spawn(move || conn.pump());
            }
            for i in 0..10 {
                assert!(registry.get(a.id()).unwrap().send(&format!("a{i}")));
                assert!(registry.get(b.id()).unwrap().send(&format!("b{i}")));
            }
            a.close();
            b.close();
        });
        assert!(text(&a).lines().all(|l| l.starts_with('a')));
        assert!(text(&b).lines().all(|l| l.starts_with('b')));
        assert_eq!(text(&a).lines().count(), 10);
        assert_eq!(text(&b).lines().count(), 10);
    }

    #[test]
    fn await_idle_waits_for_outstanding_then_returns_clean() {
        let registry: ConnRegistry<Vec<u8>> = ConnRegistry::new();
        let conn = registry.register(Vec::new());
        conn.begin();
        conn.begin();
        std::thread::scope(|scope| {
            let waiter = {
                let conn = Arc::clone(&conn);
                scope.spawn(move || conn.await_idle())
            };
            conn.send("one");
            conn.finish();
            conn.send("two");
            conn.finish();
            assert!(waiter.join().unwrap(), "clean idle, not dead");
        });
    }

    #[test]
    fn mark_dead_discards_the_outbox_and_unblocks_idle_waiters() {
        let registry: ConnRegistry<Vec<u8>> = ConnRegistry::new();
        let conn = registry.register(Vec::new());
        conn.begin();
        conn.send("never-written");
        std::thread::scope(|scope| {
            let pump = {
                let conn = Arc::clone(&conn);
                scope.spawn(move || conn.pump())
            };
            let waiter = {
                let conn = Arc::clone(&conn);
                scope.spawn(move || conn.await_idle())
            };
            conn.mark_dead();
            pump.join().unwrap();
            assert!(!waiter.join().unwrap(), "death reports unclean");
        });
        // The line may or may not have been pumped before death; dead
        // connections at least never accept more.
        assert!(!conn.send("after-death"));
        assert!(conn.is_dead());
        assert!(!registry.is_alive(conn.id()));
    }

    #[test]
    fn pump_write_error_marks_the_connection_dead() {
        /// A writer that fails after the first line.
        struct Flaky {
            wrote: usize,
        }
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.wrote > 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::BrokenPipe,
                        "peer reset",
                    ));
                }
                self.wrote += buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let registry: ConnRegistry<Flaky> = ConnRegistry::new();
        let conn = registry.register(Flaky { wrote: 0 });
        conn.send("first");
        conn.send("second");
        std::thread::scope(|scope| {
            let conn = Arc::clone(&conn);
            scope.spawn(move || conn.pump());
        });
        assert!(conn.is_dead(), "a write error is an abrupt disconnect");
        assert!(!registry.is_alive(conn.id()));
    }

    #[test]
    fn registry_lifecycle_and_local_conn() {
        let registry: ConnRegistry<Vec<u8>> = ConnRegistry::new();
        assert!(registry.is_alive(LOCAL_CONN), "stdin is always alive");
        assert!(!registry.is_alive(7), "unknown ids are not");
        assert_eq!(registry.active(), 0);
        let conn = registry.register(Vec::new());
        assert_eq!(registry.active(), 1);
        assert!(registry.is_alive(conn.id()));
        let removed = registry.deregister(conn.id()).unwrap();
        assert_eq!(removed.id(), conn.id());
        assert_eq!(registry.active(), 0);
        assert!(!registry.is_alive(conn.id()));
        assert!(registry.deregister(conn.id()).is_none());
    }
}
