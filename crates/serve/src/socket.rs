//! Socket front-end (`--features socket`): resident mode over real
//! connections.
//!
//! A [`SocketFrontEnd`] binds a TCP listener (and, on Unix, optionally a
//! Unix-domain listener) in front of a
//! [`StreamServer`]. Each accepted
//! connection carries its own JSONL request stream; every stream fans
//! into the **one shared admission queue**, so EDF ordering, bounded
//! depth + backpressure, load shedding, per-tenant fairness, drain and
//! live reload all hold *across* connections exactly as they do for a
//! single stdin stream. Responses are routed back to the originating
//! connection through a [`crate::mux::ConnRegistry`] — one outbox +
//! writer thread per connection, so one slow reader never blocks
//! another connection's responses.
//!
//! # Connection lifecycle
//!
//! * **Clean EOF** (client closes its write side): the trailing partial
//!   line, if any, is still processed; the server waits for every
//!   response this connection is owed, flushes them, and closes. A
//!   half-closed client can therefore submit its whole stream, shut
//!   down the write side, and read responses until EOF.
//! * **Abrupt disconnect** (reset / broken pipe): the connection's
//!   queued-but-unadmitted requests are cancelled with typed
//!   `"error_kind": "disconnected"` accounting
//!   ([`ServeStats::disconnected`](crate::ServeStats)); requests already
//!   executing finish on their worker and the undeliverable responses
//!   are dropped without stalling the pool.
//! * **`drain`** waits for in-flight work only — never for idle
//!   connections.
//! * **Overload**: past `max_conns` concurrent connections, new clients
//!   get one `"error_kind": "overloaded"` line and are dropped.
//!
//! Wire schema and semantics are documented in `docs/SERVING.md`
//! ("Socket mode").

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use mbb_conc::sync::atomic::{AtomicBool, Ordering};
use mbb_conc::sync::Mutex;
use mbb_core::resolve_threads;
use mbb_core::IndexStats;

use crate::jsonl::encode_stream_event;
use crate::mux::{ConnRegistry, Connection};
use crate::stream::{worker_loop, Admission, ServeStats, StreamEvent, StreamServer};

/// How long a connection reader blocks before re-checking the shutdown
/// flag and the connection's death mark.
const READ_POLL: Duration = Duration::from_millis(50);

/// How long the accept loop sleeps when no listener had a pending
/// connection.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

// ---------------------------------------------------------------------
// Builder.

/// Stages a socket front-end for a [`StreamServer`]: pick the
/// listeners, then [`bind`](SocketFrontEnd::bind) and
/// [`serve`](BoundFrontEnd::serve).
#[derive(Debug)]
pub struct SocketFrontEnd {
    server: StreamServer,
    tcp: Option<String>,
    unix: Option<PathBuf>,
    max_conns: usize,
}

impl SocketFrontEnd {
    /// Stages a front-end for `server`. Construction is cheap and
    /// infallible; only [`bind`](Self::bind) touches the network. At
    /// least one of [`with_tcp`](Self::with_tcp) /
    /// [`with_unix`](Self::with_unix) must be set before binding.
    pub fn new(server: StreamServer) -> SocketFrontEnd {
        SocketFrontEnd {
            server,
            tcp: None,
            unix: None,
            max_conns: 64,
        }
    }

    /// Listen on a TCP address (e.g. `"127.0.0.1:7070"`; port `0` picks
    /// a free port — read it back from
    /// [`BoundFrontEnd::tcp_addr`]).
    pub fn with_tcp(mut self, addr: impl Into<String>) -> SocketFrontEnd {
        self.tcp = Some(addr.into());
        self
    }

    /// Listen on a Unix-domain socket path. A stale socket file at the
    /// path is removed before binding. Ignored (with an error from
    /// [`bind`](Self::bind)) on non-Unix platforms.
    pub fn with_unix(mut self, path: impl Into<PathBuf>) -> SocketFrontEnd {
        self.unix = Some(path.into());
        self
    }

    /// Caps concurrent connections (default 64). Clients past the cap
    /// receive one `"error_kind": "overloaded"` line and are dropped.
    pub fn with_max_conns(mut self, max_conns: usize) -> SocketFrontEnd {
        self.max_conns = max_conns.max(1);
        self
    }

    /// The server behind the front-end.
    pub fn server(&self) -> &StreamServer {
        &self.server
    }

    /// Binds the configured listeners (nonblocking) and returns the
    /// bound front-end, ready to [`serve`](BoundFrontEnd::serve).
    pub fn bind(self) -> io::Result<BoundFrontEnd> {
        let SocketFrontEnd {
            server,
            tcp,
            unix,
            max_conns,
        } = self;
        if tcp.is_none() && unix.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "socket front-end needs at least one listener (with_tcp / with_unix)",
            ));
        }
        let (tcp, tcp_addr) = match tcp {
            Some(addr) => {
                let listener = TcpListener::bind(&addr)?;
                listener.set_nonblocking(true)?;
                let local = listener.local_addr()?;
                (Some(listener), Some(local))
            }
            None => (None, None),
        };
        #[cfg(unix)]
        let (unix_listener, unix_path) = match unix {
            Some(path) => {
                // A stale socket file from a previous run refuses the
                // bind; replacing it is the conventional daemon move.
                let _ = std::fs::remove_file(&path);
                let listener = UnixListener::bind(&path)?;
                listener.set_nonblocking(true)?;
                (Some(listener), Some(path))
            }
            None => (None, None),
        };
        #[cfg(not(unix))]
        {
            if unix.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix-domain sockets are not available on this platform",
                ));
            }
        }
        #[cfg(not(unix))]
        let unix_path: Option<PathBuf> = None;
        Ok(BoundFrontEnd {
            server,
            tcp,
            tcp_addr,
            #[cfg(unix)]
            unix: unix_listener,
            unix_path,
            max_conns,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }
}

// ---------------------------------------------------------------------
// Bound front-end.

/// A bound (but not yet serving) socket front-end. Dropping it removes
/// the Unix socket file, if one was bound.
#[derive(Debug)]
pub struct BoundFrontEnd {
    server: StreamServer,
    tcp: Option<TcpListener>,
    tcp_addr: Option<SocketAddr>,
    #[cfg(unix)]
    unix: Option<UnixListener>,
    unix_path: Option<PathBuf>,
    max_conns: usize,
    stop: Arc<AtomicBool>,
}

/// Stops a running [`BoundFrontEnd::serve`] loop from another thread:
/// the accept loop exits, connection readers wind down (delivering the
/// responses they are owed), workers drain the queue, and `serve`
/// returns its final [`ServeStats`].
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown; returns immediately.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

impl BoundFrontEnd {
    /// The actual TCP address bound (resolves port `0`), if TCP was
    /// configured.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix socket path bound, if one was configured.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// A handle that stops [`serve`](Self::serve) from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Serves until [`ShutdownHandle::shutdown`] is called: accepts up
    /// to `max_conns` concurrent connections, fans every stream into
    /// the shared admission queue, and routes responses back by
    /// originating connection. Returns the final stats snapshot.
    pub fn serve(mut self) -> ServeStats {
        let admission = self.server.new_admission();
        let baselines = self.server.baselines();
        let registry: ConnRegistry<Conn> = ConnRegistry::new();
        let workers = resolve_threads(self.server.config().workers);
        let tcp = self.tcp.take();
        #[cfg(unix)]
        let unix = self.unix.take();
        let stop = Arc::clone(&self.stop);
        let server = &self.server;

        // Deliver an event to its connection's outbox. Response, shed
        // and disconnect lines retire a request the reader `begin()`-ed
        // at admission; control acks and parse errors do not.
        let deliver = |conn_id: u64, event: StreamEvent| {
            let retires = matches!(
                event,
                StreamEvent::Response(_)
                    | StreamEvent::Shed { .. }
                    | StreamEvent::Disconnected { .. }
            );
            if let Some(conn) = registry.get(conn_id) {
                // Workers call this inside their request context, so the
                // encode span inherits the request/connection ids.
                let encode_span = mbb_obs::span(mbb_obs::Stage::Encode);
                let line = encode_stream_event(&event);
                drop(encode_span);
                conn.send(&line);
                if retires {
                    conn.finish();
                }
            }
        };
        let alive = |conn_id: u64| registry.is_alive(conn_id);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(&admission, &deliver, &alive));
            }
            let mut conn_threads = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                let mut accepted = Vec::new();
                if let Some(listener) = &tcp {
                    if let Ok((stream, _peer)) = listener.accept() {
                        accepted.push(Conn::Tcp(stream));
                    }
                }
                #[cfg(unix)]
                if let Some(listener) = &unix {
                    if let Ok((stream, _peer)) = listener.accept() {
                        accepted.push(Conn::Unix(stream));
                    }
                }
                let idle = accepted.is_empty();
                for mut stream in accepted {
                    if registry.active() >= self.max_conns {
                        // One typed refusal line, then drop. Best
                        // effort: a client that already vanished just
                        // fails the write.
                        let _ = stream.write_all(
                            b"{\"error\":\"connection limit reached\",\"error_kind\":\"overloaded\"}\n",
                        );
                        let _ = stream.flush();
                        continue;
                    }
                    let Ok(writer) = stream.try_clone() else {
                        continue;
                    };
                    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
                        continue;
                    }
                    let connection = registry.register(writer);
                    admission.note_conn_opened();
                    let pump_conn = Arc::clone(&connection);
                    conn_threads.push(scope.spawn(move || pump_conn.pump()));
                    let reader_refs = (&admission, &baselines, &registry, &stop, &deliver);
                    conn_threads.push(scope.spawn(move || {
                        let (admission, baselines, registry, stop, deliver) = reader_refs;
                        connection_loop(
                            server,
                            admission,
                            baselines,
                            registry,
                            &connection,
                            stream,
                            stop,
                            deliver,
                        );
                    }));
                }
                if idle {
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
            // Stop flag is set: listeners close now (no new clients),
            // connection threads wind down (the readers observe the
            // flag within one READ_POLL), and only then may the queue
            // close — workers must outlive every reader that still
            // expects its responses delivered.
            drop(tcp);
            #[cfg(unix)]
            drop(unix);
            for handle in conn_threads {
                let _ = handle.join();
            }
            admission.close();
        });

        server.snapshot(&admission, &baselines)
    }
}

impl Drop for BoundFrontEnd {
    fn drop(&mut self) {
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------
// Per-connection reader.

/// Reads one connection's JSONL stream to completion. Lines may arrive
/// split across arbitrarily small reads; a trailing line without a
/// final newline is still processed at EOF. Returns after the
/// connection is fully retired (deregistered + accounted).
#[allow(clippy::too_many_arguments)]
fn connection_loop(
    server: &StreamServer,
    admission: &Admission,
    baselines: &Mutex<Vec<IndexStats>>,
    registry: &ConnRegistry<Conn>,
    connection: &Arc<Connection<Conn>>,
    mut stream: Conn,
    stop: &AtomicBool,
    deliver: &(impl Fn(u64, StreamEvent) + Sync),
) {
    let id = connection.id();
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut line_no = 0usize;
    let mut abrupt = false;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if connection.is_dead() {
            // The pump hit a write error (reset / broken pipe): the
            // client is gone even if our read side has not seen it yet.
            abrupt = true;
            break;
        }
        match stream.read(&mut chunk) {
            // Clean EOF — or a half-close: the client shut down its
            // write side and is reading responses until we close.
            Ok(0) => break,
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    line_no += 1;
                    handle_line(
                        &line[..line.len() - 1],
                        line_no,
                        server,
                        admission,
                        baselines,
                        connection,
                        deliver,
                    );
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => {
                abrupt = true;
                break;
            }
        }
    }
    if !abrupt && !pending.is_empty() {
        // A final request line the client forgot to terminate still
        // counts — half-close flushes it.
        line_no += 1;
        handle_line(
            &pending, line_no, server, admission, baselines, connection, deliver,
        );
    }
    if !abrupt {
        // Clean close: wait for every response this connection is owed
        // (workers are still running; the queue closes only after all
        // connection threads exit). `await_idle` returns false if the
        // pump died while we waited — fall through to the abrupt path.
        abrupt = !connection.await_idle();
    }
    if abrupt {
        connection.mark_dead();
        // Queued-but-unadmitted requests from this connection are
        // cancelled; the typed events keep per-request accounting
        // (send() drops them — the wire is gone). In-flight requests
        // finish on their workers and their responses are dropped.
        for job in admission.cancel_conn(id) {
            deliver(id, job.disconnect_event());
        }
    }
    connection.close();
    registry.deregister(id);
    admission.note_conn_closed(abrupt);
}

/// Feeds one raw line through the shared admission path on behalf of a
/// connection. `begin()` brackets every request line *before* admission
/// so a response can never race the outstanding count.
fn handle_line(
    raw: &[u8],
    line_no: usize,
    server: &StreamServer,
    admission: &Admission,
    baselines: &Mutex<Vec<IndexStats>>,
    connection: &Arc<Connection<Conn>>,
    deliver: &(impl Fn(u64, StreamEvent) + Sync),
) {
    let line = String::from_utf8_lossy(raw);
    server.process_line(
        &line,
        line_no,
        connection.id(),
        admission,
        baselines,
        deliver,
        || connection.begin(),
    );
}

// ---------------------------------------------------------------------
// Transport.

/// One accepted client connection, TCP or Unix-domain.
#[derive(Debug)]
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// An independent handle to the same socket (the per-connection
    /// writer; the original stays with the reader).
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Bounded blocking on reads so the reader can poll the shutdown
    /// flag.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamConfig;
    use crate::ShardedFleet;
    use mbb_bigraph::generators;
    use std::io::{BufRead, BufReader};

    fn front(max_conns: usize) -> SocketFrontEnd {
        let mut fleet = ShardedFleet::new();
        fleet
            .add_shard("g", generators::uniform_edges(6, 6, 18, 1))
            .unwrap();
        SocketFrontEnd::new(StreamServer::new(fleet, StreamConfig::default()))
            .with_max_conns(max_conns)
    }

    #[test]
    fn bind_requires_a_listener() {
        let err = front(4).bind().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn binds_tcp_and_resolves_port_zero() {
        let bound = front(4).with_tcp("127.0.0.1:0").bind().unwrap();
        let addr = bound.tcp_addr().unwrap();
        assert_ne!(addr.port(), 0);
        let handle = bound.shutdown_handle();
        handle.shutdown();
        let stats = bound.serve();
        assert_eq!(stats.connections, 0);
    }

    #[test]
    fn serves_one_tcp_client_end_to_end() {
        let bound = front(4).with_tcp("127.0.0.1:0").bind().unwrap();
        let addr = bound.tcp_addr().unwrap();
        let handle = bound.shutdown_handle();
        let (stats, lines) = std::thread::scope(|scope| {
            let server = scope.spawn(move || bound.serve());
            let client = scope.spawn(move || {
                let mut sock = TcpStream::connect(addr).unwrap();
                sock.write_all(
                    b"{\"id\": 1, \"graph\": \"g\", \"kind\": \"solve\"}\n\
                      {\"id\": 2, \"graph\": \"g\", \"kind\": \"topk\", \"k\": 2}\n",
                )
                .unwrap();
                sock.shutdown(std::net::Shutdown::Write).unwrap();
                let mut lines = Vec::new();
                for line in BufReader::new(sock).lines() {
                    lines.push(line.unwrap());
                }
                lines
            });
            let lines = client.join().unwrap();
            handle.shutdown();
            (server.join().unwrap(), lines)
        });
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("\"id\":1")));
        assert!(lines.iter().any(|l| l.contains("\"id\":2")));
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.active_conns, 0);
        assert_eq!(stats.disconnects, 0);
    }

    #[cfg(unix)]
    #[test]
    fn serves_a_unix_domain_client() {
        let path = std::env::temp_dir().join(format!("mbb-sock-test-{}", std::process::id()));
        let bound = front(4).with_unix(&path).bind().unwrap();
        assert_eq!(bound.unix_path(), Some(path.as_path()));
        let handle = bound.shutdown_handle();
        let stats = std::thread::scope(|scope| {
            let server = scope.spawn(move || bound.serve());
            let mut sock = std::os::unix::net::UnixStream::connect(&path).unwrap();
            sock.write_all(b"{\"id\": 7, \"graph\": \"g\", \"kind\": \"solve\"}\n")
                .unwrap();
            sock.shutdown(std::net::Shutdown::Write).unwrap();
            let mut response = String::new();
            BufReader::new(sock).read_line(&mut response).unwrap();
            assert!(response.contains("\"id\":7"), "{response}");
            handle.shutdown();
            server.join().unwrap()
        });
        assert_eq!(stats.completed, 1);
        assert!(!path.exists(), "socket file cleaned up on drop");
    }

    #[test]
    fn overload_refusal_is_typed() {
        let bound = front(1).with_tcp("127.0.0.1:0").bind().unwrap();
        let addr = bound.tcp_addr().unwrap();
        let handle = bound.shutdown_handle();
        std::thread::scope(|scope| {
            let server = scope.spawn(move || bound.serve());
            // First client occupies the only slot (held open).
            let first = TcpStream::connect(addr).unwrap();
            // Wait until the server has registered it.
            std::thread::sleep(Duration::from_millis(100));
            let second = TcpStream::connect(addr).unwrap();
            let mut line = String::new();
            BufReader::new(second).read_line(&mut line).unwrap();
            assert!(line.contains("\"error_kind\":\"overloaded\""), "{line}");
            drop(first);
            handle.shutdown();
            let stats = server.join().unwrap();
            assert_eq!(stats.connections, 1, "refused client never registered");
        });
    }
}
