//! Socket front-end stub (`--features socket`).
//!
//! Resident mode reads its stream from stdin today; the natural next
//! front-end is a TCP listener feeding the same
//! [`StreamServer`](crate::stream::StreamServer) — one connection = one
//! JSONL stream, responses multiplexed back by request id. This module
//! pins down that surface without implementing it, so the feature flag
//! can be compiled (and CI builds it) while the transport work is a
//! later PR. See ROADMAP open items.

use std::io;

use crate::stream::StreamServer;

/// The (unimplemented) TCP front-end: holds the server it would expose
/// and the address it would bind.
#[derive(Debug)]
pub struct SocketFrontEnd {
    server: StreamServer,
    addr: String,
}

impl SocketFrontEnd {
    /// Stages a front-end for `server` on `addr` (e.g. `"127.0.0.1:7070"`).
    /// Construction is cheap and infallible; only [`bind`](Self::bind)
    /// touches the network.
    pub fn new(server: StreamServer, addr: impl Into<String>) -> SocketFrontEnd {
        SocketFrontEnd {
            server,
            addr: addr.into(),
        }
    }

    /// The address the front-end would bind.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The server behind the front-end.
    pub fn server(&self) -> &StreamServer {
        &self.server
    }

    /// Would bind and serve; the transport is not implemented yet, so
    /// this always returns [`io::ErrorKind::Unsupported`].
    pub fn bind(&self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!(
                "socket front-end is a stub: cannot bind {} (use `mbb serve` over stdin)",
                self.addr
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamConfig;
    use crate::ShardedFleet;
    use mbb_bigraph::generators;

    #[test]
    fn stub_refuses_to_bind() {
        let mut fleet = ShardedFleet::new();
        fleet
            .add_shard("g", generators::uniform_edges(4, 4, 8, 1))
            .unwrap();
        let front = SocketFrontEnd::new(
            StreamServer::new(fleet, StreamConfig::default()),
            "127.0.0.1:7070",
        );
        assert_eq!(front.addr(), "127.0.0.1:7070");
        assert_eq!(front.server().fleet().len(), 1);
        let err = front.bind().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }
}
