//! Model-check suite for the real `Admission` queue — the type serving
//! production traffic in `crates/serve/src/stream.rs`, not a copy.
//!
//! Compiled (and run) only under the model facade:
//!
//! ```text
//! RUSTFLAGS="--cfg mbb_conc" cargo test -p mbb-serve --test conc_models
//! ```
//!
//! In a normal build this file compiles to an empty test binary, so
//! tier-1 `cargo test` is unaffected.
//!
//! Schedule-determinism notes (the model contract): every `Instant` fed
//! to a job is fixed before `explore` starts, must-shed deadlines are
//! far in the past and must-run deadlines far in the future, so no
//! wall-clock read inside the model ever changes a branch. Event sinks
//! use a plain `std` mutex — invisible to the scheduler, which is safe
//! because no model operation happens while it is held.
#![cfg(mbb_conc)]

use std::sync::{Arc, Mutex as StdMutex};
use std::time::{Duration, Instant};

use mbb_conc::model::{explore, ExploreConfig, Strategy};
use mbb_conc::thread;
use mbb_serve::mux::ConnRegistry;
use mbb_serve::stream::{worker_loop, Admission, Completion, StreamConfig, StreamEvent, StreamJob};
use mbb_serve::{QueryKind, QueryRequest};

use mbb_core::engine::MbbEngine;

fn tiny_engine() -> Arc<MbbEngine> {
    Arc::new(MbbEngine::new(mbb_bigraph::generators::uniform_edges(
        4, 4, 8, 1,
    )))
}

/// Sampling config for models whose trace length puts full enumeration
/// out of reach (every lock/unlock/wait/notify inside the real queue is
/// a scheduling choice point). 1500 seeded-random schedules; the caller
/// asserts ≥1000 came out distinct, so each run still certifies the
/// invariants across a broad slice of the interleaving space — and any
/// failing schedule is reproducible from the fixed seed.
fn sampled(seed: u64) -> ExploreConfig {
    ExploreConfig {
        max_schedules: 1500,
        max_steps: 20_000,
        strategy: Strategy::Random { seed },
        max_threads: 16,
    }
}

#[track_caller]
fn assert_broad(report: &mbb_conc::model::ExploreReport) {
    assert!(
        report.distinct_schedules >= 1000,
        "want >=1000 distinct schedules, got {} of {}",
        report.distinct_schedules,
        report.schedules
    );
}

fn job(
    id: u64,
    shard: usize,
    engine: &Arc<MbbEngine>,
    deadline: Option<Instant>,
    base: Instant,
) -> StreamJob {
    StreamJob::synthetic(
        QueryRequest::new(id, QueryKind::Solve),
        shard,
        format!("s{shard}"),
        Arc::clone(engine),
        deadline,
        base,
    )
}

/// The headline invariants: one producer, one real `worker_loop`
/// worker. In **every explored** schedule: no deadlock, the
/// expired-deadline job is shed and never produces a `Response`, live
/// jobs all complete, and the counters reconcile exactly.
#[test]
fn sheds_never_execute_and_queue_settles() {
    let engine = tiny_engine();
    let base = Instant::now();
    let past = base; // <= any later Instant::now() → must shed
    let future = base + Duration::from_secs(3600); // never expires in-test
    let report = explore(sampled(0x73_68_65_64), move || {
        let admission = Arc::new(Admission::new(1, &StreamConfig::default()));
        let responses = Arc::new(StdMutex::new(Vec::<u64>::new()));
        let sheds = Arc::new(StdMutex::new(Vec::<u64>::new()));

        let worker = {
            let admission = Arc::clone(&admission);
            let responses = Arc::clone(&responses);
            let sheds = Arc::clone(&sheds);
            thread::spawn(move || {
                // No model ops run inside this sink (std mutex only), so
                // holding it never interleaves with scheduler state.
                let sink = |_conn: u64, event: StreamEvent| match event {
                    StreamEvent::Response(r) => responses.lock().unwrap().push(r.id),
                    StreamEvent::Shed { id, .. } => sheds.lock().unwrap().push(id),
                    _ => {}
                };
                let alive = |_conn: u64| true;
                worker_loop(&admission, &sink, &alive);
            })
        };
        let producer = {
            let admission = Arc::clone(&admission);
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                admission.push(job(1, 0, &engine, Some(future), base));
                admission.push(job(2, 0, &engine, Some(past), base));
                admission.push(job(3, 0, &engine, None, base));
                admission.close();
            })
        };
        producer.join().unwrap();
        worker.join().unwrap();

        let responses = responses.lock().unwrap().clone();
        let sheds = sheds.lock().unwrap().clone();
        assert_eq!(sheds, vec![2], "exactly the expired job is shed");
        assert!(
            !responses.contains(&2),
            "a shed request must never produce a response"
        );
        let mut served = responses.clone();
        served.sort_unstable();
        assert_eq!(served, vec![1, 3], "both live jobs complete");

        let snap = admission.queue_snapshot();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.depth, 0, "queue drained in every schedule");
        assert_eq!(snap.in_flight, 0);
    });
    assert_broad(&report);
}

/// EDF pop order across two concurrent producers: whatever interleaving
/// admitted them, once both producers have joined, pops come out in
/// deadline order with `None` deadlines last (FIFO among themselves is
/// covered by the tier-1 unit tests; across producers the seq order is
/// schedule-dependent, so only the deadline ordering is asserted here).
#[test]
fn edf_pop_order_holds_in_every_schedule() {
    let engine = tiny_engine();
    let base = Instant::now();
    let report = explore(sampled(0x65_64_66), move || {
        let admission = Arc::new(Admission::new(1, &StreamConfig::default()));
        let p1 = {
            let admission = Arc::clone(&admission);
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                admission.push(job(
                    1,
                    0,
                    &engine,
                    Some(base + Duration::from_secs(30)),
                    base,
                ));
                admission.push(job(2, 0, &engine, None, base));
            })
        };
        let p2 = {
            let admission = Arc::clone(&admission);
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                admission.push(job(
                    3,
                    0,
                    &engine,
                    Some(base + Duration::from_secs(10)),
                    base,
                ));
                admission.push(job(
                    4,
                    0,
                    &engine,
                    Some(base + Duration::from_secs(20)),
                    base,
                ));
            })
        };
        p1.join().unwrap();
        p2.join().unwrap();

        let mut popped = Vec::new();
        for _ in 0..4 {
            let job = admission.pop().expect("4 jobs queued");
            popped.push((job.deadline(), job.id()));
            admission.finish(Completion::Untracked);
        }
        // Deadlines first, soonest first, None strictly last.
        let deadline_ids: Vec<u64> = popped
            .iter()
            .filter(|(d, _)| d.is_some())
            .map(|&(_, id)| id)
            .collect();
        assert_eq!(
            deadline_ids,
            vec![3, 4, 1],
            "EDF order violated: {popped:?}"
        );
        assert_eq!(popped.last().map(|&(_, id)| id), Some(2), "None runs last");
    });
    assert_broad(&report);
}

/// Backpressure: with `queue_depth = 1` the producer must block rather
/// than overfill — in no schedule does the depth high-water mark exceed
/// the bound, and nothing is lost.
#[test]
fn bounded_depth_survives_every_schedule() {
    let engine = tiny_engine();
    let base = Instant::now();
    let report = explore(sampled(0x64_65_70), move || {
        let config = StreamConfig {
            queue_depth: 1,
            ..StreamConfig::default()
        };
        let admission = Arc::new(Admission::new(1, &config));
        let producer = {
            let admission = Arc::clone(&admission);
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                for id in 1..=3 {
                    admission.push(job(id, 0, &engine, None, base));
                }
                admission.close();
            })
        };
        let consumer = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(job) = admission.pop() {
                    got.push(job.id());
                    admission.finish(Completion::Untracked);
                }
                got
            })
        };
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![1, 2, 3], "deadline-free pushes drain FIFO");
        let snap = admission.queue_snapshot();
        assert_eq!(snap.admitted, 3);
        assert!(
            snap.max_depth <= 1,
            "depth bound violated: {}",
            snap.max_depth
        );
        assert_eq!(snap.depth, 0);
        assert_eq!(snap.in_flight, 0);
    });
    assert_broad(&report);
}

/// Drain blocks until queued **and in-flight** work retires, under every
/// interleaving of a consumer that pops before the drain is issued.
#[test]
fn drain_waits_for_in_flight_work() {
    let engine = tiny_engine();
    let base = Instant::now();
    let report = explore(sampled(0x64_72_6e), move || {
        let admission = Arc::new(Admission::new(1, &StreamConfig::default()));
        admission.push(job(1, 0, &engine, None, base));
        admission.push(job(2, 0, &engine, None, base));
        let consumer = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                for _ in 0..2 {
                    let job = admission.pop().expect("two jobs queued");
                    admission.finish(Completion::Executed {
                        shard: job.shard(),
                        search_nodes: 0,
                        queue_wait: Duration::ZERO,
                        service: Duration::ZERO,
                    });
                }
            })
        };
        let drainer = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || admission.drain())
        };
        consumer.join().unwrap();
        let completed_at_drain = drainer.join().unwrap();
        assert_eq!(
            completed_at_drain, 2,
            "drain returned before the in-flight work retired"
        );
        let snap = admission.queue_snapshot();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.in_flight, 0);
    });
    assert_broad(&report);
}

/// Bounded-exhaustive DFS over the real queue: a single push racing a
/// single pop-until-closed consumer. Even this minimal trace is too
/// long to enumerate fully (every internal lock/unlock/wait/notify is a
/// choice point), so the DFS runs to its 100k-schedule budget — a
/// *systematic* subtree of the interleaving space, each schedule
/// distinct by construction, complementing the random sampling above.
#[test]
fn single_job_handoff_survives_bounded_dfs() {
    let engine = tiny_engine();
    let base = Instant::now();
    let report = explore(ExploreConfig::exhaustive(), move || {
        let admission = Arc::new(Admission::new(1, &StreamConfig::default()));
        let producer = {
            let admission = Arc::clone(&admission);
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                admission.push(job(1, 0, &engine, None, base));
                admission.close();
            })
        };
        let consumer = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(job) = admission.pop() {
                    got.push(job.id());
                    admission.finish(Completion::Untracked);
                }
                got
            })
        };
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), vec![1]);
        let snap = admission.queue_snapshot();
        assert_eq!(snap.admitted, 1);
        assert_eq!((snap.depth, snap.in_flight), (0, 0));
    });
    assert!(
        report.distinct_schedules >= 1000,
        "DFS sweep too shallow: {} schedules",
        report.distinct_schedules
    );
}

/// The response mux (socket front-end): two connections, each with a
/// producer delivering its own responses through the shared registry
/// while per-connection pumps write them out. In every schedule: no
/// line is lost, no line crosses to the other connection's writer, and
/// per-connection order is preserved.
#[test]
fn mux_loses_nothing_and_never_cross_delivers() {
    let report = explore(sampled(0x6d_75_78), || {
        let registry: Arc<ConnRegistry<Vec<u8>>> = Arc::new(ConnRegistry::new());
        let a = registry.register(Vec::new());
        let b = registry.register(Vec::new());
        let pumps: Vec<_> = [Arc::clone(&a), Arc::clone(&b)]
            .into_iter()
            .map(|conn| thread::spawn(move || conn.pump()))
            .collect();
        let producers: Vec<_> = [Arc::clone(&a), Arc::clone(&b)]
            .into_iter()
            .map(|conn| {
                let registry = Arc::clone(&registry);
                thread::spawn(move || {
                    for n in 1..=2u32 {
                        conn.begin();
                        // Deliver through the registry, exactly as the
                        // worker sink does.
                        let target = registry.get(conn.id()).expect("registered");
                        assert!(target.send(&format!("c{}-{}", conn.id(), n)));
                        target.finish();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for conn in [&a, &b] {
            assert!(conn.await_idle(), "no disconnect in this model");
            conn.close();
        }
        for p in pumps {
            p.join().unwrap();
        }
        for conn in [&a, &b] {
            let id = conn.id();
            let written = conn.inspect_writer(|w| String::from_utf8(w.clone()).unwrap());
            assert_eq!(
                written,
                format!("c{id}-1\nc{id}-2\n"),
                "connection {id} must see exactly its own lines, in order"
            );
            registry.deregister(id);
        }
        assert_eq!(registry.active(), 0);
    });
    assert_broad(&report);
}

/// Disconnect racing delivery: one thread sends a connection's response
/// while another marks it dead (the pump hit a broken pipe). In every
/// interleaving the system settles — `await_idle` never hangs, the
/// pump exits, and a dead connection's outbox is empty — whichever side
/// won the race.
#[test]
fn mux_disconnect_during_send_always_settles() {
    let report = explore(sampled(0x64_65_61_64), || {
        let registry: Arc<ConnRegistry<Vec<u8>>> = Arc::new(ConnRegistry::new());
        let conn = registry.register(Vec::new());
        conn.begin();
        let pump = {
            let conn = Arc::clone(&conn);
            thread::spawn(move || conn.pump())
        };
        let sender = {
            let conn = Arc::clone(&conn);
            thread::spawn(move || {
                let delivered = conn.send("r1");
                conn.finish();
                delivered
            })
        };
        let killer = {
            let conn = Arc::clone(&conn);
            thread::spawn(move || conn.mark_dead())
        };
        let delivered = sender.join().unwrap();
        killer.join().unwrap();
        // mark_dead ran, so the wait always resolves (possibly false).
        let clean = conn.await_idle();
        assert!(!clean, "a dead connection must report the disconnect");
        conn.close();
        pump.join().unwrap();
        assert!(conn.is_dead());
        assert!(!registry.is_alive(conn.id()), "dead conns are not alive");
        let written = conn.inspect_writer(|w| String::from_utf8(w.clone()).unwrap());
        if !delivered {
            assert!(
                written.is_empty(),
                "a refused send must never reach the wire: {written:?}"
            );
        }
        // Delivered lines may or may not have been flushed before the
        // death mark cleared the outbox — both are valid; what is never
        // valid is a duplicated or corrupted line.
        assert!(written == "r1\n" || written.is_empty(), "{written:?}");
    });
    assert_broad(&report);
}

/// Disconnect racing the worker's pop: a consumer drains the real queue
/// while `cancel_conn` concurrently rips out one connection's queued
/// jobs. In every schedule each job retires exactly once — popped or
/// cancelled, never both, never lost — and the queue is empty after.
#[test]
fn cancel_conn_races_pop_without_losing_jobs() {
    let engine = tiny_engine();
    let base = Instant::now();
    let report = explore(sampled(0x63_61_6e), move || {
        let admission = Arc::new(Admission::new(1, &StreamConfig::default()));
        admission.push(job(1, 0, &engine, None, base).with_conn(7));
        admission.push(job(2, 0, &engine, None, base).with_conn(8));
        admission.push(job(3, 0, &engine, None, base).with_conn(7));
        admission.close();
        let consumer = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                let mut popped = Vec::new();
                while let Some(job) = admission.pop() {
                    popped.push(job.id());
                    admission.finish(Completion::Untracked);
                }
                popped
            })
        };
        let canceller = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                admission
                    .cancel_conn(7)
                    .into_iter()
                    .map(|job| job.id())
                    .collect::<Vec<u64>>()
            })
        };
        let mut popped = consumer.join().unwrap();
        let cancelled = canceller.join().unwrap();
        assert!(
            !popped.contains(&2) || !cancelled.contains(&2),
            "job 2 belongs to conn 8 and can never be cancelled"
        );
        let mut retired = popped.clone();
        retired.extend(&cancelled);
        retired.sort_unstable();
        assert_eq!(
            retired,
            vec![1, 2, 3],
            "each job retires exactly once (popped {popped:?}, cancelled {cancelled:?})"
        );
        assert!(popped.contains(&2), "conn 8's job always executes");
        popped.sort_unstable();
        let snap = admission.queue_snapshot();
        assert_eq!(snap.depth, 0, "no job left behind");
        assert_eq!(snap.in_flight, 0);
    });
    assert_broad(&report);
}

/// Coverage gate from the acceptance criteria: ≥1000 **distinct**
/// schedules explored over the admission queue. Four model threads push
/// the model past the exhaustive cutoff into seeded-random sampling;
/// distinct traces are counted by the explore report.
#[test]
fn explores_at_least_1000_distinct_schedules() {
    let engine = tiny_engine();
    let base = Instant::now();
    let config = ExploreConfig {
        max_schedules: 1500,
        max_steps: 20_000,
        strategy: Strategy::Random { seed: 0x6d6262 },
        max_threads: 16,
    };
    let report = explore(config, move || {
        let admission = Arc::new(Admission::new(2, &StreamConfig::default()));
        let producers: Vec<_> = (0..2)
            .map(|shard| {
                let admission = Arc::clone(&admission);
                let engine = Arc::clone(&engine);
                thread::spawn(move || {
                    let id = shard as u64 * 10;
                    admission.push(job(id + 1, shard, &engine, None, base));
                    admission.push(job(
                        id + 2,
                        shard,
                        &engine,
                        Some(base + Duration::from_secs(5 + id)),
                        base,
                    ));
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let admission = Arc::clone(&admission);
                thread::spawn(move || {
                    let mut n = 0u32;
                    while let Some(_job) = admission.pop() {
                        admission.finish(Completion::Untracked);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        admission.close();
        let drained: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(drained, 4, "every admitted job pops exactly once");
        let snap = admission.queue_snapshot();
        assert_eq!(snap.admitted, 4);
        assert_eq!(snap.depth, 0);
    });
    assert!(
        report.distinct_schedules >= 1000,
        "acceptance requires >=1000 distinct schedules, got {}",
        report.distinct_schedules
    );
}

/// The `ServeStats` conservation law, observed **mid-race**: while a
/// worker executes jobs and a canceller rips out one connection's
/// queued work, an observer repeatedly snapshots the counters. Every
/// snapshot is taken under the state lock, so in every schedule and at
/// every observation point the balance must hold exactly:
/// `admitted == completed + shed + disconnected + depth + in_flight`
/// (`rejected` is pre-admission and stays out of the law). This is the
/// invariant the `{"control": "stats"}` / `{"control": "metrics"}`
/// surfaces report from — a transiently unbalanced snapshot would mean
/// the wire can publish books that don't close.
#[test]
fn stats_snapshot_balances_at_every_observation() {
    let engine = tiny_engine();
    let base = Instant::now();
    let past = base;
    let future = base + Duration::from_secs(3600);
    let report = explore(sampled(0x62_61_6c), move || {
        let admission = Arc::new(Admission::new(1, &StreamConfig::default()));
        let worker = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                let sink = |_conn: u64, _event: StreamEvent| {};
                let alive = |_conn: u64| true;
                worker_loop(&admission, &sink, &alive);
            })
        };
        let producer = {
            let admission = Arc::clone(&admission);
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                admission.push(job(1, 0, &engine, Some(future), base).with_conn(7));
                admission.push(job(2, 0, &engine, Some(past), base));
                admission.push(job(3, 0, &engine, None, base).with_conn(7));
                admission.close();
            })
        };
        let canceller = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || admission.cancel_conn(7).len() as u64)
        };
        let observer = {
            let admission = Arc::clone(&admission);
            thread::spawn(move || {
                for _ in 0..3 {
                    let snap = admission.queue_snapshot();
                    assert!(snap.is_balanced(), "books don't close mid-race: {snap:?}");
                }
            })
        };
        producer.join().unwrap();
        let cancelled = canceller.join().unwrap();
        observer.join().unwrap();
        worker.join().unwrap();

        let snap = admission.queue_snapshot();
        assert!(snap.is_balanced(), "final books don't close: {snap:?}");
        assert_eq!(snap.admitted, 3);
        assert_eq!((snap.depth, snap.in_flight), (0, 0), "fully retired");
        assert_eq!(snap.disconnected, cancelled, "cancellations all counted");
        assert_eq!(snap.rejected, 0, "nothing was rejected pre-admission");
        assert_eq!(
            snap.completed + snap.shed + snap.disconnected,
            3,
            "every admitted job retired exactly once: {snap:?}"
        );
    });
    assert_broad(&report);
}
