//! End-to-end tests driving the `mbb` binary: every subcommand, both
//! output formats, and the error paths.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mbb(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mbb"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A fresh temp path (the test process id + a counter keeps parallel test
/// binaries apart).
fn temp_path(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("mbb-cli-e2e-{}-{tag}.txt", std::process::id()));
    path
}

/// Writes the paper's Figure 1(b) graph (1-based ids) and returns the path.
fn figure_1b(tag: &str) -> PathBuf {
    let path = temp_path(tag);
    std::fs::write(
        &path,
        "% bipartite 6 6\n1 1\n2 1\n2 2\n3 2\n3 3\n3 4\n4 3\n4 4\n5 3\n5 4\n6 5\n6 6\n",
    )
    .expect("temp file writes");
    path
}

#[test]
fn solve_default_command() {
    let path = figure_1b("solve");
    let out = mbb(&[path.to_str().unwrap(), "--stats"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2x2"), "{text}");
    assert!(text.contains("stage:"), "{text}");
    std::fs::remove_file(path).ok();
}

#[test]
fn solve_subcommand_form_matches_legacy() {
    let path = figure_1b("solve-sub");
    let legacy = mbb(&[path.to_str().unwrap(), "--json"]);
    let sub = mbb(&["solve", path.to_str().unwrap(), "--json"]);
    assert!(legacy.status.success() && sub.status.success());
    let mut a: serde_json::Value = serde_json::from_str(&stdout(&legacy)).unwrap();
    let mut b: serde_json::Value = serde_json::from_str(&stdout(&sub)).unwrap();
    // Wall-clock differs between runs; everything else must match.
    a["seconds"] = serde_json::json!(0);
    b["seconds"] = serde_json::json!(0);
    assert_eq!(a, b);
    std::fs::remove_file(path).ok();
}

#[test]
fn solve_json_has_one_based_ids() {
    let path = figure_1b("json");
    let out = mbb(&[path.to_str().unwrap(), "--json"]);
    let value: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(value["half_size"], 2);
    // The optimum is any 2 of {3,4,5} on the left; the right side is {3,4}.
    for u in value["left"].as_array().unwrap() {
        assert!([3, 4, 5].contains(&u.as_u64().unwrap()), "{value}");
    }
    assert_eq!(value["right"], serde_json::json!([3, 4]));
    std::fs::remove_file(path).ok();
}

#[test]
fn stats_reports_profile() {
    let path = figure_1b("stats");
    let out = mbb(&["stats", path.to_str().unwrap(), "--full"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("|E| = 12"), "{text}");
    assert!(text.contains("butterflies"), "{text}");
    std::fs::remove_file(path).ok();
}

#[test]
fn stats_json_is_parseable() {
    let path = figure_1b("stats-json");
    let out = mbb(&["stats", path.to_str().unwrap(), "--json"]);
    let value: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(value["num_edges"], 12);
    assert!(value.get("butterflies").is_none(), "--full not given");
    std::fs::remove_file(path).ok();
}

#[test]
fn generate_then_solve_round_trip() {
    let path = temp_path("generated");
    let gen = mbb(&[
        "generate",
        path.to_str().unwrap(),
        "--kind",
        "sparse",
        "--left",
        "100",
        "--right",
        "100",
        "--edges",
        "400",
        "--plant",
        "5",
        "--seed",
        "9",
    ]);
    assert!(gen.status.success(), "{}", stderr(&gen));
    let solve = mbb(&[path.to_str().unwrap(), "--json"]);
    assert!(solve.status.success());
    let value: serde_json::Value = serde_json::from_str(&stdout(&solve)).unwrap();
    assert!(value["half_size"].as_u64().unwrap() >= 5);
    std::fs::remove_file(path).ok();
}

#[test]
fn enumerate_lists_maximal_bicliques() {
    let path = figure_1b("enum");
    let out = mbb(&["enumerate", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    // The block {3,4,5}×{3,4} (1-based) is one of the maximal bicliques.
    assert!(text.contains("[3, 4, 5] x [3, 4]"), "{text}");
    std::fs::remove_file(path).ok();
}

#[test]
fn topk_ranks_best_first() {
    let path = figure_1b("topk");
    let out = mbb(&["topk", path.to_str().unwrap(), "--k", "2", "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let value: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    let rows = value["bicliques"].as_array().unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0]["balanced_size"], 2);
    assert!(rows[0]["balanced_size"].as_u64() >= rows[1]["balanced_size"].as_u64());
    std::fs::remove_file(path).ok();
}

#[test]
fn anchored_requires_valid_vertex() {
    let path = figure_1b("anchored");
    let good = mbb(&["anchored", path.to_str().unwrap(), "--vertex", "L4"]);
    assert!(good.status.success(), "{}", stderr(&good));
    assert!(stdout(&good).contains("2x2"), "{}", stdout(&good));
    let out_of_range = mbb(&["anchored", path.to_str().unwrap(), "--vertex", "L99"]);
    assert!(!out_of_range.status.success());
    assert!(stderr(&out_of_range).contains("out of range"));
    std::fs::remove_file(path).ok();
}

#[test]
fn frontier_reports_corners() {
    let path = figure_1b("frontier");
    let out = mbb(&["frontier", path.to_str().unwrap(), "--json"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let value: serde_json::Value = serde_json::from_str(&stdout(&out)).unwrap();
    assert_eq!(value["mbb_half"], 2);
    assert_eq!(value["complete"], true);
    // The 3×2 block {3,4,5}×{3,4} gives the MEB corner 6 edges.
    assert_eq!(value["meb_edges"], 6);
    std::fs::remove_file(path).ok();
}

#[test]
fn missing_file_fails_with_message() {
    let out = mbb(&["/nonexistent/graph.txt"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("error"));
    let out = mbb(&["stats", "/nonexistent/graph.txt"]);
    assert!(!out.status.success());
}

#[test]
fn malformed_edge_list_fails() {
    let path = temp_path("malformed");
    std::fs::write(&path, "1 2\nnot numbers\n").unwrap();
    let out = mbb(&[path.to_str().unwrap()]);
    assert!(!out.status.success());
    std::fs::remove_file(path).ok();
}

#[test]
fn unknown_command_exits_2() {
    let out = mbb(&["frobnicate", "x.txt"]);
    // "frobnicate" is not a command, so it is treated as an input path.
    assert!(!out.status.success());
}

#[test]
fn top_level_help() {
    let out = mbb(&["--help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "solve",
        "stats",
        "generate",
        "enumerate",
        "topk",
        "anchored",
    ] {
        assert!(text.contains(cmd), "missing {cmd} in help");
    }
}

#[test]
fn no_arguments_prints_usage() {
    let out = mbb(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage"));
}
