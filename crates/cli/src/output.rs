//! Text and JSON rendering for the CLI.

use serde::Serialize;

use crate::options::Options;
use crate::run::Report;

#[derive(Serialize)]
struct JsonReport<'a> {
    algorithm: &'a str,
    num_left: usize,
    num_right: usize,
    num_edges: usize,
    half_size: usize,
    total_size: usize,
    /// 1-based, matching the KONECT input ids.
    left: Vec<u32>,
    right: Vec<u32>,
    seconds: f64,
    timed_out: bool,
    #[serde(skip_serializing_if = "Option::is_none")]
    stage: Option<String>,
    #[serde(skip_serializing_if = "Option::is_none")]
    degeneracy: Option<u32>,
    #[serde(skip_serializing_if = "Option::is_none")]
    bidegeneracy: Option<u32>,
}

/// Renders the report per the output options.
pub fn render(report: &Report, options: &Options) -> String {
    // Back to the input file's 1-based ids.
    let left: Vec<u32> = report.biclique.left.iter().map(|&u| u + 1).collect();
    let right: Vec<u32> = report.biclique.right.iter().map(|&v| v + 1).collect();

    if options.json {
        let json = JsonReport {
            algorithm: report.algorithm,
            num_left: report.num_left,
            num_right: report.num_right,
            num_edges: report.num_edges,
            half_size: report.biclique.half_size(),
            total_size: report.biclique.total_size(),
            left,
            right,
            seconds: report.seconds,
            timed_out: report.timed_out,
            stage: report.stats.as_ref().map(|s| s.stage.to_string()),
            degeneracy: report.stats.as_ref().map(|s| s.degeneracy),
            bidegeneracy: report.stats.as_ref().map(|s| s.bidegeneracy),
        };
        let mut out = serde_json::to_string_pretty(&json).expect("report serialises");
        out.push('\n');
        return out;
    }

    let mut out = String::new();
    out.push_str(&format!(
        "graph: |L|={} |R|={} |E|={}\n",
        report.num_left, report.num_right, report.num_edges
    ));
    out.push_str(&format!(
        "maximum balanced biclique ({}): {}x{} in {:.3}s{}\n",
        report.algorithm,
        report.biclique.half_size(),
        report.biclique.half_size(),
        report.seconds,
        if report.timed_out {
            " [TIMED OUT — lower bound only]"
        } else {
            ""
        }
    ));
    out.push_str(&format!("left:  {left:?}\nright: {right:?}\n"));
    if options.stats {
        if let Some(stats) = &report.stats {
            out.push_str(&format!(
                "stage: {} | δ = {} | δ̈ = {} | subgraphs: {} generated, {} verified\n",
                stats.stage,
                stats.degeneracy,
                stats.bidegeneracy,
                stats.subgraphs_generated,
                stats.subgraphs_verified
            ));
            out.push_str(&format!(
                "search: {} nodes, {} poly solves, max depth {}\n",
                stats.search.nodes, stats.search.poly_solves, stats.search.max_depth
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Options;
    use mbb_core::biclique::Biclique;

    fn sample_report() -> Report {
        Report {
            biclique: Biclique::balanced(vec![0, 2], vec![1, 3]),
            num_left: 5,
            num_right: 5,
            num_edges: 9,
            seconds: 0.012,
            timed_out: false,
            stats: None,
            algorithm: "hbvMBB",
        }
    }

    fn options(extra: &str) -> Options {
        let mut args = vec!["g.txt".to_string()];
        args.extend(extra.split_whitespace().map(str::to_string));
        Options::parse(&args).unwrap()
    }

    #[test]
    fn text_output_uses_one_based_ids() {
        let text = render(&sample_report(), &options(""));
        assert!(text.contains("left:  [1, 3]"), "{text}");
        assert!(text.contains("right: [2, 4]"), "{text}");
        assert!(text.contains("2x2"));
    }

    #[test]
    fn json_output_is_valid_json() {
        let text = render(&sample_report(), &options("--json"));
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(value["half_size"], 2);
        assert_eq!(value["left"][0], 1);
        assert_eq!(value["algorithm"], "hbvMBB");
    }

    #[test]
    fn timeout_is_flagged() {
        let mut report = sample_report();
        report.timed_out = true;
        let text = render(&report, &options(""));
        assert!(text.contains("TIMED OUT"));
    }
}
