//! Command-line option parsing (no external dependencies).

use std::time::Duration;

use mbb_bigraph::order::SearchOrder;
use mbb_core::verify::ParallelMode;

/// Usage text.
pub const USAGE: &str = "\
usage: mbb <edge-list-file> [options]

Finds the maximum balanced biclique of a bipartite graph given as a
KONECT-style edge list (whitespace-separated 1-based `left right` pairs;
lines starting with % or # are comments).

options:
  --algorithm <hbv|dense|basic|ext>  solver to use (default: hbv)
      hbv    the hbvMBB framework (Algorithm 4) — for sparse graphs
      dense  denseMBB directly (Algorithm 3)    — for dense graphs
      basic  basicBB (Algorithm 1)              — reference, tiny graphs
      ext    extBBClq baseline (Zhou et al. 2018)
  --order <bidegeneracy|degeneracy|degree>  hbv search order (default: bidegeneracy)
  --threads <N>        worker threads for the parallel search stages;
                       0 = one per core (default: 1, the paper's
                       sequential algorithm)
  --parallel-mode <auto|intra|subgraph>  how verification spends the
                       workers (default: auto — pick intra or subgraph per
                       solve from the bridge skew stats; intra = split the
                       branch-and-bound inside each vertex-centred
                       subgraph; subgraph = split the subgraphs across
                       workers)
  --deadline-secs <N>  abandon the hbv search after N seconds and report
                       the best-so-far biclique (marked as a lower bound)
  --budget-secs <N>    time budget for the ext baseline (default: none)
  --json               machine-readable output
  --stats              include solver statistics
  --help               this text";

/// Which solver to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// `hbvMBB` (Algorithm 4).
    Hbv,
    /// `denseMBB` on the whole graph (Algorithm 3).
    Dense,
    /// `basicBB` (Algorithm 1).
    Basic,
    /// The `extBBClq` baseline.
    Ext,
}

/// Parsed options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Input path.
    pub input: String,
    /// Selected algorithm.
    pub algorithm: Algorithm,
    /// Search order for `hbv`.
    pub order: SearchOrder,
    /// Worker threads for `hbv`'s parallel stages (0 = one per available
    /// core).
    pub threads: usize,
    /// How `hbv` verification spends its workers.
    pub parallel_mode: ParallelMode,
    /// Deadline for the `hbv` engine query (best-so-far on expiry).
    pub deadline: Option<Duration>,
    /// Budget for the `ext` baseline.
    pub budget: Option<Duration>,
    /// Emit JSON.
    pub json: bool,
    /// Emit statistics.
    pub stats: bool,
    /// `--help` given.
    pub help: bool,
}

impl Options {
    /// Parses argv (without the program name).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut options = Options {
            input: String::new(),
            algorithm: Algorithm::Hbv,
            order: SearchOrder::Bidegeneracy,
            threads: 1,
            parallel_mode: ParallelMode::default(),
            deadline: None,
            budget: None,
            json: false,
            stats: false,
            help: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--help" | "-h" => options.help = true,
                "--json" => options.json = true,
                "--stats" => options.stats = true,
                "--algorithm" => {
                    let value = iter.next().ok_or("--algorithm needs a value")?;
                    options.algorithm = match value.as_str() {
                        "hbv" => Algorithm::Hbv,
                        "dense" => Algorithm::Dense,
                        "basic" => Algorithm::Basic,
                        "ext" => Algorithm::Ext,
                        other => return Err(format!("unknown algorithm {other:?}")),
                    };
                }
                "--order" => {
                    let value = iter.next().ok_or("--order needs a value")?;
                    options.order = match value.as_str() {
                        "bidegeneracy" => SearchOrder::Bidegeneracy,
                        "degeneracy" => SearchOrder::Degeneracy,
                        "degree" => SearchOrder::Degree,
                        other => return Err(format!("unknown order {other:?}")),
                    };
                }
                "--threads" => {
                    let value = iter.next().ok_or("--threads needs a value")?;
                    options.threads = value
                        .parse()
                        .map_err(|_| format!("--threads: bad number {value:?}"))?;
                }
                "--parallel-mode" => {
                    let value = iter.next().ok_or("--parallel-mode needs a value")?;
                    options.parallel_mode = match value.as_str() {
                        "auto" => ParallelMode::Auto,
                        "intra" => ParallelMode::IntraSubgraph,
                        "subgraph" => ParallelMode::Subgraph,
                        other => return Err(format!("unknown parallel mode {other:?}")),
                    };
                }
                "--budget-secs" => {
                    let value = iter.next().ok_or("--budget-secs needs a value")?;
                    let secs: u64 = value
                        .parse()
                        .map_err(|_| format!("--budget-secs: bad number {value:?}"))?;
                    options.budget = Some(Duration::from_secs(secs));
                }
                "--deadline-secs" => {
                    let value = iter.next().ok_or("--deadline-secs needs a value")?;
                    let secs: u64 = value
                        .parse()
                        .map_err(|_| format!("--deadline-secs: bad number {value:?}"))?;
                    options.deadline = Some(Duration::from_secs(secs));
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown option {other:?}"));
                }
                path => {
                    if !options.input.is_empty() {
                        return Err(format!("unexpected extra argument {path:?}"));
                    }
                    options.input = path.to_string();
                }
            }
        }
        if !options.help && options.input.is_empty() {
            return Err("missing input file".to_string());
        }
        Ok(options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Options, String> {
        Options::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn minimal_invocation() {
        let o = parse("graph.txt").unwrap();
        assert_eq!(o.input, "graph.txt");
        assert_eq!(o.algorithm, Algorithm::Hbv);
        assert!(!o.json);
    }

    #[test]
    fn full_invocation() {
        let o = parse(
            "g.txt --algorithm dense --order degree --threads 4 --budget-secs 30 --json --stats",
        )
        .unwrap();
        assert_eq!(o.algorithm, Algorithm::Dense);
        assert_eq!(o.order, SearchOrder::Degree);
        assert_eq!(o.threads, 4);
        assert_eq!(o.budget, Some(Duration::from_secs(30)));
        assert!(o.json && o.stats);
    }

    #[test]
    fn missing_input_is_an_error() {
        assert!(parse("--json").is_err());
    }

    #[test]
    fn help_without_input_is_fine() {
        let o = parse("--help").unwrap();
        assert!(o.help);
    }

    #[test]
    fn deadline_and_auto_threads_parse() {
        let o = parse("g.txt --threads 0 --deadline-secs 2").unwrap();
        assert_eq!(o.threads, 0);
        assert_eq!(o.deadline, Some(Duration::from_secs(2)));
    }

    #[test]
    fn parallel_mode_parses() {
        let o = parse("g.txt").unwrap();
        assert_eq!(o.parallel_mode, ParallelMode::Auto);
        let o = parse("g.txt --parallel-mode subgraph").unwrap();
        assert_eq!(o.parallel_mode, ParallelMode::Subgraph);
        let o = parse("g.txt --parallel-mode intra").unwrap();
        assert_eq!(o.parallel_mode, ParallelMode::IntraSubgraph);
        let o = parse("g.txt --parallel-mode auto").unwrap();
        assert_eq!(o.parallel_mode, ParallelMode::Auto);
        assert!(parse("g.txt --parallel-mode sideways").is_err());
    }

    #[test]
    fn unknown_algorithm_rejected() {
        assert!(parse("g.txt --algorithm quantum").is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse("g.txt --frobnicate").is_err());
    }

    #[test]
    fn double_input_rejected() {
        assert!(parse("a.txt b.txt").is_err());
    }
}
