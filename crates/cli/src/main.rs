//! `mbb` — command-line maximum balanced biclique toolkit.
//!
//! ```text
//! mbb <command> [args]            subcommands: solve stats generate
//!                                 enumerate topk anchored serve
//! mbb <edge-list> [solve options] back-compatible default (= solve)
//! ```
//!
//! Edge lists are KONECT-style: 1-based `left right` pairs, `%`/`#`
//! comments. All output ids are 1-based, matching the input file.

use std::process::ExitCode;

mod commands;
mod options;
mod output;
mod run;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Subcommand dispatch; "solve" falls through to the legacy path so the
    // original flat interface keeps working.
    match args.first().map(String::as_str) {
        None => {
            eprintln!("{}", commands::USAGE);
            return ExitCode::from(2);
        }
        Some("--help") | Some("-h") => {
            println!("{}", commands::USAGE);
            println!("\nsolve options:\n{}", options::USAGE);
            return ExitCode::SUCCESS;
        }
        Some(first) if commands::is_command(first) && first != "solve" => {
            return match commands::dispatch(first, &args[1..]) {
                Ok(text) => {
                    print!("{text}");
                    ExitCode::SUCCESS
                }
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::from(2)
                }
            };
        }
        _ => {}
    }

    let solve_args = if args.first().map(String::as_str) == Some("solve") {
        &args[1..]
    } else {
        &args[..]
    };
    let options = match options::Options::parse(solve_args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", options::USAGE);
            return ExitCode::from(2);
        }
    };
    if options.help {
        println!("{}", options::USAGE);
        return ExitCode::SUCCESS;
    }
    match run::run(&options) {
        Ok(report) => {
            print!("{}", output::render(&report, &options));
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
