//! Solver dispatch for the CLI.

use std::time::Instant;

use mbb_bigraph::local::LocalGraph;
use mbb_core::basic::basic_bb;
use mbb_core::biclique::Biclique;
use mbb_core::stats::SolveStats;
use mbb_core::{dense_mbb_graph, MbbEngine, SolverConfig};

use crate::options::{Algorithm, Options};

/// What the CLI reports.
#[derive(Debug)]
pub struct Report {
    /// The optimum balanced biclique (1-based ids on output).
    pub biclique: Biclique,
    /// Graph shape.
    pub num_left: usize,
    /// Graph shape.
    pub num_right: usize,
    /// Graph shape.
    pub num_edges: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// True when the run hit the budget (ext only) — result is a bound.
    pub timed_out: bool,
    /// Solver statistics when available (`hbv`/`dense`).
    pub stats: Option<SolveStats>,
    /// Algorithm label.
    pub algorithm: &'static str,
}

/// Loads the graph (through the store, so warm `.mbbg` caches are used)
/// and runs the selected solver.
pub fn run(options: &Options) -> Result<Report, String> {
    let graph = crate::commands::load_graph(&options.input)?.graph;
    let start = Instant::now();
    let (biclique, stats, timed_out, algorithm) = match options.algorithm {
        Algorithm::Hbv => {
            // Arc-share the graph with the engine: no CSR copy.
            let engine = MbbEngine::from_arc(
                graph.clone(),
                SolverConfig {
                    order: options.order,
                    threads: options.threads,
                    parallel_mode: options.parallel_mode,
                    ..Default::default()
                },
            );
            let mut query = engine.query();
            if let Some(deadline) = options.deadline {
                query = query.deadline(deadline);
            }
            let result = query.solve();
            (
                result.value,
                Some(result.stats),
                !result.termination.is_complete(),
                "hbvMBB",
            )
        }
        Algorithm::Dense => {
            let result = dense_mbb_graph(&graph);
            (result.biclique, Some(result.stats), false, "denseMBB")
        }
        Algorithm::Basic => {
            let left_ids: Vec<u32> = (0..graph.num_left() as u32).collect();
            let right_ids: Vec<u32> = (0..graph.num_right() as u32).collect();
            let local = LocalGraph::induced(&graph, &left_ids, &right_ids);
            let (found, _) = basic_bb(&local, 0);
            (
                Biclique::balanced(found.left, found.right),
                None,
                false,
                "basicBB",
            )
        }
        Algorithm::Ext => {
            let out = mbb_baselines::ext_bbclq(&graph, options.budget);
            (out.biclique, None, out.timed_out, "extBBClq")
        }
    };
    let seconds = start.elapsed().as_secs_f64();
    debug_assert!(biclique.is_valid(&graph));
    Ok(Report {
        biclique,
        num_left: graph.num_left(),
        num_right: graph.num_right(),
        num_edges: graph.num_edges(),
        seconds,
        timed_out,
        stats,
        algorithm,
    })
}
