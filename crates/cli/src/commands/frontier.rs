//! `mbb frontier` — the Pareto frontier of feasible biclique sizes.

use std::time::Duration;

use mbb_core::MbbEngine;
use serde::Serialize;

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb frontier <edge-list-file> [--budget-secs <N>] [--json]

Prints the Pareto-maximal feasible biclique size pairs (a, b): a biclique
with |A| >= a and |B| >= b exists iff some frontier point dominates
(a, b). The balanced corner is the MBB, the max-product corner the MEB,
the max-sum corner the MVB.";

/// Parsed `frontier` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierOptions {
    /// Input path.
    pub input: String,
    /// Time budget in seconds.
    pub budget_secs: Option<u64>,
    /// Emit JSON.
    pub json: bool,
}

impl FrontierOptions {
    /// Parses the subcommand's argv (after `frontier`).
    pub fn parse(args: &[String]) -> Result<FrontierOptions, String> {
        let mut options = FrontierOptions {
            input: String::new(),
            budget_secs: None,
            json: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--json" => options.json = true,
                "--budget-secs" => {
                    let value = iter.next().ok_or("--budget-secs needs a value")?;
                    options.budget_secs = Some(
                        value
                            .parse()
                            .map_err(|_| format!("--budget-secs: bad number {value:?}"))?,
                    );
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown option {other:?}"));
                }
                path => {
                    if !options.input.is_empty() {
                        return Err(format!("unexpected extra argument {path:?}"));
                    }
                    options.input = path.to_string();
                }
            }
        }
        if options.input.is_empty() {
            return Err("missing input file".to_string());
        }
        Ok(options)
    }
}

#[derive(Serialize)]
struct JsonFrontier {
    complete: bool,
    pairs: Vec<[usize; 2]>,
    mbb_half: usize,
    meb_edges: usize,
    mvb_total: usize,
}

/// Runs the subcommand, returning the rendered output.
pub fn run(options: &FrontierOptions) -> Result<String, String> {
    let loaded = crate::commands::load_graph(&options.input)?;
    let graph = loaded.graph;
    let engine = MbbEngine::from_arc(graph, Default::default());
    let mut query = engine.query();
    if let Some(secs) = options.budget_secs {
        query = query.deadline(Duration::from_secs(secs));
    }
    let frontier = query.frontier().value;
    if options.json {
        let mut out = serde_json::to_string_pretty(&JsonFrontier {
            complete: frontier.complete,
            pairs: frontier.pairs.iter().map(|&(a, b)| [a, b]).collect(),
            mbb_half: frontier.mbb_half(),
            meb_edges: frontier.meb_edges(),
            mvb_total: frontier.mvb_total(),
        })
        .expect("frontier serialises");
        out.push('\n');
        return Ok(out);
    }
    let mut out = String::new();
    out.push_str("feasible size frontier (a, b):\n");
    for &(a, b) in &frontier.pairs {
        out.push_str(&format!("  {a} x {b}\n"));
    }
    if frontier.pairs.is_empty() {
        out.push_str("  (no bicliques — edgeless graph)\n");
    }
    out.push_str(&format!(
        "corners: MBB half = {}, MEB edges = {}, MVB total = {}\n",
        frontier.mbb_half(),
        frontier.meb_edges(),
        frontier.mvb_total()
    ));
    if !frontier.complete {
        out.push_str("[stopped early — frontier is a lower bound]\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<FrontierOptions, String> {
        FrontierOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_options() {
        let o = parse("g.txt --budget-secs 10 --json").unwrap();
        assert_eq!(o.budget_secs, Some(10));
        assert!(o.json);
    }

    #[test]
    fn requires_input() {
        assert!(parse("--json").is_err());
    }

    #[test]
    fn rejects_unknown_option() {
        assert!(parse("g.txt --fast").is_err());
    }
}
