//! `mbb enumerate` — stream maximal bicliques of an edge list.

use std::time::Duration;

use mbb_core::enumerate::EnumConfig;
use mbb_core::MbbEngine;
use serde::Serialize;

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb enumerate <edge-list-file> [options]

Enumerates maximal bicliques (each exactly once, both sides non-empty),
one per output line, 1-based ids matching the input file.

options:
  --min-left <N>     only bicliques with |A| >= N (default 1)
  --min-right <N>    only bicliques with |B| >= N (default 1)
  --max-results <N>  stop after N bicliques
  --budget-secs <N>  stop after N seconds
  --threads <N>      reserved for the engine's parallel stages; the
                     enumeration itself is currently sequential
  --json             one JSON object per line (JSONL)";

/// Parsed `enumerate` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumerateOptions {
    /// Input path.
    pub input: String,
    /// Minimum `|A|`.
    pub min_left: usize,
    /// Minimum `|B|`.
    pub min_right: usize,
    /// Result cap.
    pub max_results: Option<u64>,
    /// Time budget in seconds.
    pub budget_secs: Option<u64>,
    /// Engine worker threads (0 = one per core).
    pub threads: usize,
    /// Emit JSONL.
    pub json: bool,
}

impl EnumerateOptions {
    /// Parses the subcommand's argv (after `enumerate`).
    pub fn parse(args: &[String]) -> Result<EnumerateOptions, String> {
        let mut options = EnumerateOptions {
            input: String::new(),
            min_left: 1,
            min_right: 1,
            max_results: None,
            budget_secs: None,
            threads: 1,
            json: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--json" => options.json = true,
                "--min-left" => {
                    options.min_left = parse_number(&value_of("--min-left")?, "--min-left")?;
                }
                "--min-right" => {
                    options.min_right = parse_number(&value_of("--min-right")?, "--min-right")?;
                }
                "--max-results" => {
                    options.max_results =
                        Some(parse_number(&value_of("--max-results")?, "--max-results")?);
                }
                "--budget-secs" => {
                    options.budget_secs =
                        Some(parse_number(&value_of("--budget-secs")?, "--budget-secs")?);
                }
                "--threads" => {
                    options.threads = parse_number(&value_of("--threads")?, "--threads")?;
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown option {other:?}"));
                }
                path => {
                    if !options.input.is_empty() {
                        return Err(format!("unexpected extra argument {path:?}"));
                    }
                    options.input = path.to_string();
                }
            }
        }
        if options.input.is_empty() {
            return Err("missing input file".to_string());
        }
        Ok(options)
    }
}

fn parse_number<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: bad number {value:?}"))
}

#[derive(Serialize)]
struct JsonLine {
    left: Vec<u32>,
    right: Vec<u32>,
    balanced_size: usize,
}

/// Runs the subcommand, returning the rendered output.
pub fn run(options: &EnumerateOptions) -> Result<String, String> {
    let loaded = crate::commands::load_graph(&options.input)?;
    let graph = loaded.graph;
    let config = EnumConfig {
        min_left: options.min_left,
        min_right: options.min_right,
        max_results: options.max_results,
        budget: options.budget_secs.map(Duration::from_secs),
    };
    let engine = MbbEngine::from_arc(graph, Default::default());
    let result = engine.query().threads(options.threads).enumerate(config);
    let mut out = String::new();
    for b in &result.value.bicliques {
        let left: Vec<u32> = b.left.iter().map(|&u| u + 1).collect();
        let right: Vec<u32> = b.right.iter().map(|&v| v + 1).collect();
        if options.json {
            let line = JsonLine {
                balanced_size: b.balanced_size(),
                left,
                right,
            };
            out.push_str(&serde_json::to_string(&line).expect("line serialises"));
            out.push('\n');
        } else {
            out.push_str(&format!("{left:?} x {right:?}\n"));
        }
    }
    let outcome = result.value.outcome;
    if !options.json {
        out.push_str(&format!(
            "{} maximal biclique(s){}\n",
            outcome.reported,
            if outcome.complete {
                ""
            } else {
                " [stopped early]"
            }
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<EnumerateOptions, String> {
        EnumerateOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_filters() {
        let o = parse("g.txt --min-left 2 --min-right 3 --max-results 10 --json").unwrap();
        assert_eq!(o.min_left, 2);
        assert_eq!(o.min_right, 3);
        assert_eq!(o.max_results, Some(10));
        assert!(o.json);
    }

    #[test]
    fn parses_threads() {
        let o = parse("g.txt --threads 0").unwrap();
        assert_eq!(o.threads, 0);
    }

    #[test]
    fn requires_input() {
        assert!(parse("--json").is_err());
    }

    #[test]
    fn bad_number_rejected() {
        assert!(parse("g.txt --min-left many").is_err());
    }
}
