//! `mbb ingest` — pre-build the `.mbbg` binary cache for edge lists.

use mbb_bigraph::io::read_edge_list_file;
use mbb_store::{GraphStore, Provenance};

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb ingest <edge-list-file>... [--force] [--verify]

Parses each edge list through the streaming two-pass builder and writes
(or refreshes) the binary graph cache next to it (<file>.mbbg). Later
loads of the same file — every mbb subcommand, serve-batch shards, the
bench harness — hit the cache instead of re-parsing.

A fresh cache is left untouched unless --force. With --verify, each
written cache is re-loaded and compared byte-for-byte (CSR offsets and
adjacency) against a straight text parse before success is reported.";

/// Parsed `ingest` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestOptions {
    /// Input paths, in argument order.
    pub inputs: Vec<String>,
    /// Rebuild even when the cache is fresh.
    pub force: bool,
    /// Re-load each cache and compare against a text parse.
    pub verify: bool,
}

impl IngestOptions {
    /// Parses the subcommand's argv (after `ingest`).
    pub fn parse(args: &[String]) -> Result<IngestOptions, String> {
        let mut options = IngestOptions {
            inputs: Vec::new(),
            force: false,
            verify: false,
        };
        for arg in args {
            match arg.as_str() {
                "--force" => options.force = true,
                "--verify" => options.verify = true,
                other if other.starts_with('-') => {
                    return Err(format!("unknown option {other:?}"));
                }
                path => options.inputs.push(path.to_string()),
            }
        }
        if options.inputs.is_empty() {
            return Err("at least one edge-list file is required".to_string());
        }
        Ok(options)
    }
}

/// Runs the subcommand, returning the rendered output.
pub fn run(options: &IngestOptions) -> Result<String, String> {
    let store = GraphStore::from_env();
    let mut out = String::new();
    for input in &options.inputs {
        let loaded = store
            .ingest(input, options.force)
            .map_err(|e| format!("{input}: {e}"))?;
        let g = &loaded.graph;
        match loaded.provenance {
            Provenance::CacheHit => out.push_str(&format!(
                "{input}: cache fresh ({}, |L|={} |R|={} |E|={}, loaded in {:.3}ms)\n",
                loaded
                    .cache
                    .as_deref()
                    .unwrap_or(loaded.source.as_path())
                    .display(),
                g.num_left(),
                g.num_right(),
                g.num_edges(),
                loaded.load_time.as_secs_f64() * 1e3,
            )),
            _ => {
                let cache = loaded
                    .cache
                    .as_ref()
                    .ok_or_else(|| format!("{input}: caching disabled (MBB_CACHE=off?)"))?;
                if loaded.provenance != Provenance::ParsedAndCached {
                    return Err(format!(
                        "{input}: cache write failed{}",
                        loaded
                            .note
                            .as_deref()
                            .map(|n| format!(" [{n}]"))
                            .unwrap_or_default()
                    ));
                }
                out.push_str(&format!(
                    "{input}: parsed |L|={} |R|={} |E|={} in {:.3}ms, wrote {} ({} bytes) in {:.3}ms\n",
                    g.num_left(),
                    g.num_right(),
                    g.num_edges(),
                    loaded.load_time.as_secs_f64() * 1e3,
                    cache.display(),
                    std::fs::metadata(cache).map(|m| m.len()).unwrap_or(0),
                    loaded
                        .cache_write_time
                        .map(|d| d.as_secs_f64() * 1e3)
                        .unwrap_or(0.0),
                ));
            }
        }
        if options.verify {
            let cache = loaded
                .cache
                .as_ref()
                .ok_or_else(|| format!("{input}: nothing to verify"))?;
            if *cache == loaded.source {
                // The input *is* the cache (a .mbbg file): there is no
                // source text to re-parse, and the load above already ran
                // the checksum + CSR-invariant validation.
                out.push_str(&format!(
                    "{input}: verified (checksum and CSR invariants; no source text to compare)\n"
                ));
                continue;
            }
            let (cached, _) =
                mbb_store::binfmt::load_graph(cache).map_err(|e| format!("{input}: {e}"))?;
            let parsed =
                read_edge_list_file(&loaded.source).map_err(|e| format!("{input}: {e}"))?;
            let identical = cached.left_offsets() == parsed.left_offsets()
                && cached.left_neighbors() == parsed.left_neighbors()
                && cached.right_offsets() == parsed.right_offsets()
                && cached.right_neighbors() == parsed.right_neighbors();
            if !identical {
                return Err(format!(
                    "{input}: cache does not match a fresh parse — please report"
                ));
            }
            out.push_str(&format!(
                "{input}: verified byte-identical to a fresh parse\n"
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<IngestOptions, String> {
        IngestOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_inputs_and_flags() {
        let o = parse("a.txt b.txt --force --verify").unwrap();
        assert_eq!(o.inputs, vec!["a.txt", "b.txt"]);
        assert!(o.force && o.verify);
    }

    #[test]
    fn requires_an_input() {
        assert!(parse("--force").is_err());
        assert!(parse("a.txt --wat").is_err());
    }

    #[test]
    fn ingest_end_to_end() {
        let dir = std::env::temp_dir().join(format!("mbb-ingest-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "1 1\n1 2\n2 1\n2 2\n3 3\n").unwrap();
        let spec = path.to_str().unwrap().to_string();

        let first = run(&parse(&format!("{spec} --verify")).unwrap()).unwrap();
        assert!(first.contains("wrote"), "{first}");
        assert!(first.contains("verified byte-identical"), "{first}");
        let second = run(&parse(&spec).unwrap()).unwrap();
        assert!(second.contains("cache fresh"), "{second}");
        let forced = run(&parse(&format!("{spec} --force")).unwrap()).unwrap();
        assert!(forced.contains("wrote"), "{forced}");
        // Ingesting the .mbbg itself validates it instead of text-parsing
        // binary bytes.
        let direct = run(&parse(&format!("{spec}.mbbg --verify")).unwrap()).unwrap();
        assert!(direct.contains("cache fresh"), "{direct}");
        assert!(direct.contains("verified (checksum"), "{direct}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
