//! `mbb serve-batch` — run a JSONL request batch against a sharded
//! engine fleet.

use mbb_serve::jsonl::{encode_report, parse_requests};
use mbb_serve::{BatchExecutor, ShardedFleet};
use mbb_store::GraphStore;

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb serve-batch --shard <id>=<edge-list-file> [--shard ...]
                       --requests <jsonl-file> [--workers <N>] [--stats]

Builds one engine session per --shard (routable by its <id>), reads one
JSON request per line from the --requests file, executes the batch on a
worker pool (deadline-soonest first), and prints one JSON response per
line in request order. --workers 0 uses one worker per core (default 1).
--stats appends a final {\"batch\": ...} summary line.

Shards load through the graph store: a fresh .mbbg binary cache next to
an edge list (see `mbb ingest`) is used instead of re-parsing, and a
shard file may itself be a .mbbg path. MBB_CACHE=off disables caching.

The request/response schema (nine query kinds, per-request deadline_ms
and threads, 1-based vertex ids) is documented in docs/SERVING.md.
Example request file:

  {\"id\": 1, \"graph\": \"a\", \"kind\": \"solve\", \"deadline_ms\": 500}
  {\"id\": 2, \"graph\": \"b\", \"kind\": \"topk\", \"k\": 3}
  {\"id\": 3, \"kind\": \"anchored\", \"side\": \"left\", \"vertex\": 4}";

/// Parsed `serve-batch` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeBatchOptions {
    /// `(shard id, edge-list path)` pairs, in registration order.
    pub shards: Vec<(String, String)>,
    /// Path of the JSONL request file.
    pub requests: String,
    /// Worker pool size (0 = one per core).
    pub workers: usize,
    /// Append the batch summary line.
    pub stats: bool,
}

impl ServeBatchOptions {
    /// Parses the subcommand's argv (after `serve-batch`).
    pub fn parse(args: &[String]) -> Result<ServeBatchOptions, String> {
        let mut options = ServeBatchOptions {
            shards: Vec::new(),
            requests: String::new(),
            workers: 1,
            stats: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--stats" => options.stats = true,
                "--shard" => {
                    let value = value_of("--shard")?;
                    let (id, path) = value
                        .split_once('=')
                        .ok_or_else(|| format!("--shard: expected <id>=<file>, got {value:?}"))?;
                    if id.is_empty() || path.is_empty() {
                        return Err(format!("--shard: expected <id>=<file>, got {value:?}"));
                    }
                    options.shards.push((id.to_string(), path.to_string()));
                }
                "--requests" => options.requests = value_of("--requests")?,
                "--workers" => {
                    let value = value_of("--workers")?;
                    options.workers = value
                        .parse()
                        .map_err(|_| format!("--workers: bad number {value:?}"))?;
                }
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        if options.shards.is_empty() {
            return Err("at least one --shard <id>=<file> is required".to_string());
        }
        if options.requests.is_empty() {
            return Err("--requests <jsonl-file> is required".to_string());
        }
        Ok(options)
    }
}

/// Runs the subcommand, returning the rendered JSONL output.
pub fn run(options: &ServeBatchOptions) -> Result<String, String> {
    // Shards resolve through the store: a warm .mbbg cache next to the
    // edge list skips the parse entirely (MBB_CACHE=off opts out).
    let store = GraphStore::from_env();
    let mut fleet = ShardedFleet::new();
    for (id, path) in &options.shards {
        fleet
            .add_shard_from_store(id.clone(), &store, path)
            .map_err(|e| e.to_string())?;
    }
    let text = std::fs::read_to_string(&options.requests)
        .map_err(|e| format!("{}: {e}", options.requests))?;
    let requests = parse_requests(&text).map_err(|e| e.to_string())?;
    let executor = BatchExecutor::new(fleet, options.workers);
    let report = executor.run_batch(requests);
    Ok(encode_report(&report, options.stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<ServeBatchOptions, String> {
        ServeBatchOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_shards_and_requests() {
        let o = parse("--shard a=x.txt --shard b=y.txt --requests r.jsonl --workers 0 --stats")
            .unwrap();
        assert_eq!(
            o.shards,
            vec![
                ("a".to_string(), "x.txt".to_string()),
                ("b".to_string(), "y.txt".to_string())
            ]
        );
        assert_eq!(o.requests, "r.jsonl");
        assert_eq!(o.workers, 0);
        assert!(o.stats);
    }

    #[test]
    fn requires_shards_and_requests() {
        assert!(parse("--requests r.jsonl").is_err());
        assert!(parse("--shard a=x.txt").is_err());
        assert!(parse("--shard ax.txt --requests r.jsonl").is_err());
        assert!(parse("--shard =x.txt --requests r.jsonl").is_err());
    }

    #[test]
    fn end_to_end_over_temp_files() {
        let dir = std::env::temp_dir().join("mbb-serve-batch-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.txt");
        // K2,2 plus a pendant edge, 1-based KONECT ids.
        std::fs::write(&graph_path, "1 1\n1 2\n2 1\n2 2\n3 3\n").unwrap();
        let requests_path = dir.join("r.jsonl");
        std::fs::write(
            &requests_path,
            "{\"id\": 1, \"graph\": \"g\", \"kind\": \"solve\"}\n\
             {\"id\": 2, \"kind\": \"topk\", \"k\": 2}\n",
        )
        .unwrap();
        let options = parse(&format!(
            "--shard g={} --requests {} --stats",
            graph_path.display(),
            requests_path.display()
        ))
        .unwrap();
        let output = run(&options).unwrap();
        let lines: Vec<&str> = output.lines().collect();
        assert_eq!(lines.len(), 3, "2 responses + stats line:\n{output}");
        assert!(
            lines[0].contains("\"termination\":\"complete\""),
            "{output}"
        );
        assert!(lines[0].contains("\"half_size\":2"), "{output}");
        assert!(lines[2].contains("\"batch\""), "{output}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
