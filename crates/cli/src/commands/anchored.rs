//! `mbb anchored` — the largest balanced biclique through a given vertex.

use mbb_bigraph::graph::Vertex;
use mbb_core::MbbEngine;
use serde::Serialize;

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb anchored <edge-list-file> --vertex <L<id>|R<id>>
                    [--threads <N>] [--json]

Finds the maximum balanced biclique containing the given vertex
(1-based ids matching the input file), e.g. --vertex L3 or --vertex R12.
--threads N is reserved for the engine's parallel stages; the anchored
search itself is currently sequential (0 = one worker per core).";

/// Parsed `anchored` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnchoredOptions {
    /// Input path.
    pub input: String,
    /// True when the anchor is on the left side.
    pub left_side: bool,
    /// 1-based anchor id within its side.
    pub id: u32,
    /// Engine worker threads (0 = one per core).
    pub threads: usize,
    /// Emit JSON.
    pub json: bool,
}

impl AnchoredOptions {
    /// Parses the subcommand's argv (after `anchored`).
    pub fn parse(args: &[String]) -> Result<AnchoredOptions, String> {
        let mut options = AnchoredOptions {
            input: String::new(),
            left_side: true,
            id: 0,
            threads: 1,
            json: false,
        };
        let mut vertex_given = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--json" => options.json = true,
                "--threads" => {
                    let value = iter.next().ok_or("--threads needs a value")?;
                    options.threads = value
                        .parse()
                        .map_err(|_| format!("--threads: bad number {value:?}"))?;
                }
                "--vertex" => {
                    let value = iter.next().ok_or("--vertex needs a value")?;
                    let side = value
                        .chars()
                        .next()
                        .ok_or_else(|| format!("--vertex: bad value {value:?}"))?;
                    let digits = &value[side.len_utf8()..];
                    options.left_side = match side {
                        'L' | 'l' => true,
                        'R' | 'r' => false,
                        _ => return Err(format!("--vertex must start with L or R: {value:?}")),
                    };
                    options.id = digits
                        .parse()
                        .map_err(|_| format!("--vertex: bad id {digits:?}"))?;
                    if options.id == 0 {
                        return Err("--vertex ids are 1-based".to_string());
                    }
                    vertex_given = true;
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown option {other:?}"));
                }
                path => {
                    if !options.input.is_empty() {
                        return Err(format!("unexpected extra argument {path:?}"));
                    }
                    options.input = path.to_string();
                }
            }
        }
        if options.input.is_empty() {
            return Err("missing input file".to_string());
        }
        if !vertex_given {
            return Err("--vertex is required".to_string());
        }
        Ok(options)
    }
}

#[derive(Serialize)]
struct JsonAnchored {
    anchor: String,
    half_size: usize,
    left: Vec<u32>,
    right: Vec<u32>,
}

/// Runs the subcommand, returning the rendered output.
pub fn run(options: &AnchoredOptions) -> Result<String, String> {
    let loaded = crate::commands::load_graph(&options.input)?;
    let graph = loaded.graph;
    let zero_based = options.id - 1;
    let side_size = if options.left_side {
        graph.num_left()
    } else {
        graph.num_right()
    };
    if zero_based as usize >= side_size {
        return Err(format!(
            "vertex {}{} out of range (side has {side_size} vertices)",
            if options.left_side { 'L' } else { 'R' },
            options.id
        ));
    }
    let anchor = if options.left_side {
        Vertex::left(zero_based)
    } else {
        Vertex::right(zero_based)
    };
    let engine = MbbEngine::from_arc(graph, Default::default());
    let biclique = engine
        .query()
        .threads(options.threads)
        .anchored(anchor)
        .value;
    let left: Vec<u32> = biclique.left.iter().map(|&u| u + 1).collect();
    let right: Vec<u32> = biclique.right.iter().map(|&v| v + 1).collect();
    let anchor_label = format!(
        "{}{}",
        if options.left_side { 'L' } else { 'R' },
        options.id
    );
    if options.json {
        let mut out = serde_json::to_string_pretty(&JsonAnchored {
            anchor: anchor_label,
            half_size: biclique.half_size(),
            left,
            right,
        })
        .expect("result serialises");
        out.push('\n');
        return Ok(out);
    }
    if biclique.is_empty() {
        return Ok(format!(
            "{anchor_label} has no incident edge: empty result\n"
        ));
    }
    Ok(format!(
        "largest balanced biclique through {anchor_label}: {}x{}\nleft:  {left:?}\nright: {right:?}\n",
        biclique.half_size(),
        biclique.half_size()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<AnchoredOptions, String> {
        AnchoredOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_left_and_right_anchors() {
        let o = parse("g.txt --vertex L3").unwrap();
        assert!(o.left_side);
        assert_eq!(o.id, 3);
        let o = parse("g.txt --vertex R12 --json").unwrap();
        assert!(!o.left_side);
        assert_eq!(o.id, 12);
        assert!(o.json);
    }

    #[test]
    fn parses_threads() {
        let o = parse("g.txt --vertex L1 --threads 4").unwrap();
        assert_eq!(o.threads, 4);
    }

    #[test]
    fn vertex_is_required() {
        assert!(parse("g.txt").is_err());
    }

    #[test]
    fn rejects_bad_vertex_syntax() {
        assert!(parse("g.txt --vertex 3").is_err());
        assert!(parse("g.txt --vertex X3").is_err());
        assert!(parse("g.txt --vertex L0").is_err());
        assert!(parse("g.txt --vertex L").is_err());
    }
}
