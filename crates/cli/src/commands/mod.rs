//! Subcommand implementations.
//!
//! `mbb` dispatches on its first argument: a known subcommand name routes
//! here, anything else is treated as an input path for the default
//! `solve` behaviour (back-compatible with the original single-command
//! interface).

pub mod anchored;
pub mod bench_kernels;
pub mod bench_obs;
pub mod enumerate;
pub mod frontier;
pub mod generate;
pub mod ingest;
pub mod serve;
pub mod serve_batch;
pub mod stats;
pub mod topk;
pub mod trace;

use mbb_store::{GraphStore, LoadedGraph};

/// Loads a graph through the [`GraphStore`] — every subcommand's input
/// path goes through here, so warm `.mbbg` caches are used (and
/// written/refreshed) everywhere. `MBB_CACHE=off|ro` opts out.
pub fn load_graph(spec: &str) -> Result<LoadedGraph, String> {
    GraphStore::from_env()
        .load(spec)
        .map_err(|e| format!("{spec}: {e}"))
}

/// Top-level usage text.
pub const USAGE: &str = "\
usage: mbb <command> [args]   (or: mbb <edge-list-file> [solve options])

commands:
  solve      find the maximum balanced biclique (default command)
  stats      structural profile: density, degrees, δ, δ̈, butterflies
  generate   write a seeded synthetic bipartite graph
  ingest     pre-build the .mbbg binary cache for edge-list files
  enumerate  stream maximal bicliques
  topk       the k best balanced bicliques
  anchored   largest balanced biclique through a given vertex
  frontier   Pareto frontier of feasible biclique sizes
  serve-batch  run a JSONL query batch over sharded engine sessions
  serve      resident JSONL stream service with admission control
  trace      replay a request file with spans on, print per-stage times
  bench-kernels  time the bitset kernels per backend, write BENCH_kernels.json
  bench-obs  measure span-instrumentation overhead, write BENCH_obs.json

Graph inputs accept an edge list or a .mbbg binary cache; a fresh cache
next to an edge list is used automatically (MBB_CACHE=off disables).

`mbb <command> --help` prints per-command options.";

/// Dispatch result: rendered output or an error message.
pub fn dispatch(command: &str, args: &[String]) -> Result<String, String> {
    let wants_help = args.iter().any(|a| a == "--help" || a == "-h");
    match command {
        "stats" => {
            if wants_help {
                return Ok(format!("{}\n", stats::USAGE));
            }
            stats::run(&stats::StatsOptions::parse(args)?)
        }
        "generate" => {
            if wants_help {
                return Ok(format!("{}\n", generate::USAGE));
            }
            generate::run(&generate::GenerateOptions::parse(args)?)
        }
        "ingest" => {
            if wants_help {
                return Ok(format!("{}\n", ingest::USAGE));
            }
            ingest::run(&ingest::IngestOptions::parse(args)?)
        }
        "enumerate" => {
            if wants_help {
                return Ok(format!("{}\n", enumerate::USAGE));
            }
            enumerate::run(&enumerate::EnumerateOptions::parse(args)?)
        }
        "topk" => {
            if wants_help {
                return Ok(format!("{}\n", topk::USAGE));
            }
            topk::run(&topk::TopkOptions::parse(args)?)
        }
        "anchored" => {
            if wants_help {
                return Ok(format!("{}\n", anchored::USAGE));
            }
            anchored::run(&anchored::AnchoredOptions::parse(args)?)
        }
        "frontier" => {
            if wants_help {
                return Ok(format!("{}\n", frontier::USAGE));
            }
            frontier::run(&frontier::FrontierOptions::parse(args)?)
        }
        "serve-batch" => {
            if wants_help {
                return Ok(format!("{}\n", serve_batch::USAGE));
            }
            serve_batch::run(&serve_batch::ServeBatchOptions::parse(args)?)
        }
        "serve" => {
            if wants_help {
                return Ok(format!("{}\n", serve::USAGE));
            }
            serve::run(&serve::ServeOptions::parse(args)?)
        }
        "trace" => {
            if wants_help {
                return Ok(format!("{}\n", trace::USAGE));
            }
            trace::run(&trace::TraceOptions::parse(args)?)
        }
        "bench-kernels" => {
            if wants_help {
                return Ok(format!("{}\n", bench_kernels::USAGE));
            }
            bench_kernels::run(&bench_kernels::BenchKernelsOptions::parse(args)?)
        }
        "bench-obs" => {
            if wants_help {
                return Ok(format!("{}\n", bench_obs::USAGE));
            }
            bench_obs::run(&bench_obs::BenchObsOptions::parse(args)?)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// True when `name` is a recognised subcommand.
pub fn is_command(name: &str) -> bool {
    matches!(
        name,
        "solve"
            | "stats"
            | "generate"
            | "ingest"
            | "enumerate"
            | "topk"
            | "anchored"
            | "frontier"
            | "serve-batch"
            | "serve"
            | "trace"
            | "bench-kernels"
            | "bench-obs"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognises_commands() {
        assert!(is_command("stats"));
        assert!(is_command("solve"));
        assert!(!is_command("graph.txt"));
        assert!(!is_command("--help"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(dispatch("quantum", &[]).is_err());
    }

    #[test]
    fn per_command_help() {
        for cmd in [
            "stats",
            "generate",
            "ingest",
            "enumerate",
            "topk",
            "anchored",
            "frontier",
            "serve-batch",
            "serve",
            "trace",
            "bench-kernels",
            "bench-obs",
        ] {
            let text = dispatch(cmd, &["--help".to_string()]).unwrap();
            assert!(text.contains("usage:"), "{cmd}");
        }
    }
}
