//! `mbb bench-kernels` — measure the fused bitset kernels against the
//! scalar reference loops and write `BENCH_kernels.json`.

use mbb_bench::{
    run_kernel_bench, KernelBenchOptions, KernelBenchReport, ScaleCaps, StandInCache, Table,
};

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb bench-kernels [--out FILE] [--caps small|default|large]
                         [--seed N] [--quick] [--check FILE]

Benchmarks every bitset kernel (popcount, fused AND+popcount, in-place
AND+count, survivor scans, batched multi-row AND) on every backend the
CPU offers — the scalar `reference` loops are the pre-kernel-layer
baseline — then times fig4/table5-style end-to-end solves under pinned
backends. Results are written as JSON (schema in `mbb_bench::report`)
and summarised as a Markdown table.

options:
  --out FILE    output JSON path (default BENCH_kernels.json)
  --caps C      stand-in scale caps for end-to-end runs (default: default)
  --seed N      workload seed (default 42)
  --quick       ~32x fewer iterations + smaller stand-ins (CI smoke)
  --check FILE  validate an existing report instead of benchmarking:
                parse FILE, re-run the schema/finiteness/consistency
                checks, and exit non-zero on any violation";

/// Parsed `bench-kernels` options.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchKernelsOptions {
    /// Output JSON path.
    pub out: String,
    /// Caps label (`small`/`default`/`large`).
    pub caps: String,
    /// Workload seed.
    pub seed: u64,
    /// Quick (smoke) mode.
    pub quick: bool,
    /// Validate this file instead of running.
    pub check: Option<String>,
}

impl BenchKernelsOptions {
    /// Parses the subcommand's argv (after `bench-kernels`).
    pub fn parse(args: &[String]) -> Result<BenchKernelsOptions, String> {
        let mut options = BenchKernelsOptions {
            out: "BENCH_kernels.json".to_string(),
            caps: "default".to_string(),
            seed: 42,
            quick: false,
            check: None,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--out" => options.out = value_of("--out")?,
                "--caps" => {
                    let value = value_of("--caps")?;
                    if !matches!(value.as_str(), "small" | "default" | "large") {
                        return Err(format!("--caps must be small|default|large, got {value:?}"));
                    }
                    options.caps = value;
                }
                "--seed" => {
                    let value = value_of("--seed")?;
                    options.seed = value
                        .parse()
                        .map_err(|_| format!("--seed: bad number {value:?}"))?;
                }
                "--quick" => options.quick = true,
                "--check" => options.check = Some(value_of("--check")?),
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        Ok(options)
    }

    fn scale_caps(&self) -> ScaleCaps {
        match self.caps.as_str() {
            "small" => ScaleCaps::small(),
            "large" => ScaleCaps {
                max_edges: 200_000,
                max_vertices: 150_000,
            },
            _ => ScaleCaps::default(),
        }
    }
}

/// Renders the improvement + end-to-end summary tables.
fn summarise(report: &KernelBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "backends: {} (seed {}, caps {})\n\n",
        report.backends.join(", "),
        report.seed,
        report.caps
    ));

    let mut table = Table::new(&[
        "kernel", "words", "ref ns", "fused ns", "best ns", "speedup",
    ]);
    for imp in &report.improvements {
        table.row(vec![
            imp.kernel.clone(),
            imp.words.to_string(),
            format!("{:.2}", imp.baseline_ns),
            format!("{:.2}", imp.fused_ns),
            format!("{:.2}", imp.best_ns),
            format!("{:.2}x", imp.best_speedup),
        ]);
    }
    out.push_str(&table.render());

    out.push_str("\nend-to-end (full solve wall clock, backend pinned):\n\n");
    let mut e2e = Table::new(&["experiment", "dataset", "backend", "seconds", "optimum"]);
    for e in &report.end_to_end {
        e2e.row(vec![
            e.experiment.clone(),
            e.dataset.clone(),
            e.backend.clone(),
            format!("{:.4}", e.seconds),
            e.optimum.to_string(),
        ]);
    }
    out.push_str(&e2e.render());
    out
}

/// Runs the subcommand.
pub fn run(options: &BenchKernelsOptions) -> Result<String, String> {
    if let Some(path) = &options.check {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let report: KernelBenchReport =
            serde_json::from_str(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?;
        report
            .validate()
            .map_err(|e| format!("{path}: invalid report: {e}"))?;
        return Ok(format!(
            "{path}: valid kernel bench report ({} timings, {} end-to-end runs, backends: {})\n",
            report.kernels.len(),
            report.end_to_end.len(),
            report.backends.join(", ")
        ));
    }

    let bench_options = KernelBenchOptions {
        seed: options.seed,
        caps: options.scale_caps(),
        caps_label: options.caps.clone(),
        quick: options.quick,
    };
    let cache = StandInCache::from_env();
    let report = run_kernel_bench(&bench_options, &cache);
    let json =
        serde_json::to_string_pretty(&report).map_err(|e| format!("serialise report: {e}"))?;
    std::fs::write(&options.out, json.as_bytes()).map_err(|e| format!("{}: {e}", options.out))?;

    Ok(format!(
        "{}\nwrote {} ({} timings)\n",
        summarise(&report),
        options.out,
        report.kernels.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<BenchKernelsOptions, String> {
        BenchKernelsOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let o = parse("").unwrap();
        assert_eq!(o.out, "BENCH_kernels.json");
        assert_eq!(o.caps, "default");
        assert_eq!(o.seed, 42);
        assert!(!o.quick);
        assert_eq!(o.check, None);
    }

    #[test]
    fn parses_all_options() {
        let o = parse("--out /tmp/k.json --caps small --seed 7 --quick").unwrap();
        assert_eq!(o.out, "/tmp/k.json");
        assert_eq!(o.caps, "small");
        assert_eq!(o.seed, 7);
        assert!(o.quick);
    }

    #[test]
    fn rejects_bad_caps_and_unknown_flags() {
        assert!(parse("--caps huge").is_err());
        assert!(parse("--frobnicate").is_err());
        assert!(parse("--seed x").is_err());
    }

    #[test]
    fn check_mode_rejects_missing_and_malformed_files() {
        let missing = BenchKernelsOptions {
            check: Some("/nonexistent/kernels.json".into()),
            ..parse("").unwrap()
        };
        assert!(run(&missing).is_err());

        let dir = std::env::temp_dir().join("mbb-bench-kernels-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, b"{\"schema_version\": 999}").unwrap();
        let malformed = BenchKernelsOptions {
            check: Some(bad.to_string_lossy().into_owned()),
            ..parse("").unwrap()
        };
        assert!(run(&malformed).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    /// The trajectory gate itself: `--check` must accept the committed
    /// BENCH_kernels.json as-is and reject a copy whose checksum field
    /// is hand-corrupted — proving the cross-backend validation really
    /// reads the checksums rather than only the schema.
    #[test]
    fn check_mode_rejects_corrupted_committed_checksum() {
        let committed =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
        let committed = committed.to_string_lossy().into_owned();
        let pristine = BenchKernelsOptions {
            check: Some(committed.clone()),
            ..parse("").unwrap()
        };
        run(&pristine).expect("the committed report must validate");

        // Corrupt exactly one checksum digit, textually — the file is
        // otherwise byte-identical, so only checksum validation can
        // catch it.
        let text = std::fs::read_to_string(&committed).unwrap();
        let marker = "\"checksum\": ";
        let at = text.find(marker).expect("committed report has checksums") + marker.len();
        let digit = text[at..].chars().next().expect("digit after marker");
        let flipped = if digit == '9' { '1' } else { '9' };
        let mut corrupted = text.clone();
        corrupted.replace_range(at..at + 1, &flipped.to_string());
        assert_ne!(corrupted, text);

        let dir = std::env::temp_dir().join("mbb-bench-kernels-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupted.json");
        std::fs::write(&path, corrupted).unwrap();
        let check = BenchKernelsOptions {
            check: Some(path.to_string_lossy().into_owned()),
            ..parse("").unwrap()
        };
        let err = run(&check).expect_err("a corrupted checksum must be rejected");
        assert!(err.contains("checksum"), "unexpected error: {err}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
