//! `mbb trace` — run a JSONL request file through a resident server
//! with span recording on, then print the aggregated per-stage time
//! table (and optionally dump the raw Chrome trace).

use std::io::BufWriter;

use mbb_bench::Table;
use mbb_obs as obs;

use super::serve::{build_server, ServeOptions};

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb trace --shard <id>=<edge-list-file> [--shard ...]
                 --requests <jsonl-file>
                 [--workers <N>] [--trace-file <out.json>]

Replays the request file through the resident serve loop (same admission
control as `mbb serve`) with span recording enabled, then prints one row
per pipeline stage — parse, admission wait, queue, the solver stages,
encode — with count, total, mean and max wall clock. Stage names match
docs/OBSERVABILITY.md.

  --requests FILE    JSONL request/control lines, as `mbb serve` reads
                     them from stdin
  --workers N        worker threads (default 1; 0 = one per core)
  --trace-file FILE  also write the raw spans as a Chrome trace_event
                     JSON array (load via chrome://tracing or Perfetto)

Shards resolve through the graph store (.mbbg caches apply).";

/// Parsed `trace` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOptions {
    /// The serve fleet/loop configuration (shards, workers).
    pub serve: ServeOptions,
    /// The JSONL request file to replay.
    pub requests: String,
    /// Optional Chrome trace output path.
    pub trace_file: Option<String>,
}

impl TraceOptions {
    /// Parses the subcommand's argv (after `trace`).
    pub fn parse(args: &[String]) -> Result<TraceOptions, String> {
        let mut requests = None;
        let mut trace_file = None;
        let mut serve_args: Vec<String> = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--requests" => requests = Some(value_of("--requests")?),
                "--trace-file" => trace_file = Some(value_of("--trace-file")?),
                "--shard" | "--workers" => {
                    let flag = arg.clone();
                    serve_args.push(flag.clone());
                    serve_args.push(value_of(&flag)?);
                }
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        let requests = requests.ok_or_else(|| "--requests <jsonl-file> is required".to_string())?;
        Ok(TraceOptions {
            serve: ServeOptions::parse(&serve_args)?,
            requests,
            trace_file,
        })
    }
}

/// Renders the per-stage aggregation table.
fn stage_table(aggregates: &[obs::StageAgg]) -> String {
    let ms = |nanos: u64| format!("{:.3}", nanos as f64 / 1e6);
    let mut table = Table::new(&["stage", "count", "total ms", "mean ms", "max ms"]);
    for agg in aggregates {
        table.row(vec![
            agg.stage.label().to_string(),
            agg.count.to_string(),
            ms(agg.total_nanos),
            ms(agg.mean_nanos()),
            ms(agg.max_nanos),
        ]);
    }
    table.render()
}

/// Runs the subcommand.
pub fn run(options: &TraceOptions) -> Result<String, String> {
    let input = std::fs::read_to_string(&options.requests)
        .map_err(|e| format!("{}: {e}", options.requests))?;
    let server = build_server(&options.serve)?;

    obs::enable();
    obs::drain(|_| {}); // discard spans left over from fleet construction
    let stats = server.serve_with(input.as_bytes(), |_event| {
        // Events are discarded; per-event lines are what `mbb serve`
        // is for — this command reports the span timeline instead.
    });
    let mut records: Vec<obs::SpanRecord> = Vec::new();
    obs::drain(|record| records.push(record));
    let dropped = obs::dropped_records();
    obs::disable();
    records.sort_by_key(|r| (r.start_nanos, r.seq));

    if let Some(path) = &options.trace_file {
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        let mut writer =
            obs::TraceWriter::new(BufWriter::new(file)).map_err(|e| format!("{path}: {e}"))?;
        for record in &records {
            writer.write(record).map_err(|e| format!("{path}: {e}"))?;
        }
        writer.finish().map_err(|e| format!("{path}: {e}"))?;
    }

    let aggregates = obs::aggregate(&records);
    let mut out = stage_table(&aggregates);
    out.push_str(&format!(
        "\n{} spans from {} completed / {} admitted requests",
        records.len(),
        stats.completed,
        stats.admitted
    ));
    if dropped > 0 {
        out.push_str(&format!(" ({dropped} spans dropped by full rings)"));
    }
    out.push('\n');
    if let Some(path) = &options.trace_file {
        out.push_str(&format!("wrote {path} ({} spans)\n", records.len()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<TraceOptions, String> {
        TraceOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_options() {
        let o = parse("--shard g=x.txt --requests q.jsonl").unwrap();
        assert_eq!(o.requests, "q.jsonl");
        assert_eq!(o.trace_file, None);
        assert_eq!(o.serve.shards.len(), 1);
        assert_eq!(o.serve.workers, 1);

        let o =
            parse("--shard g=x.txt --requests q.jsonl --workers 2 --trace-file t.json").unwrap();
        assert_eq!(o.serve.workers, 2);
        assert_eq!(o.trace_file.as_deref(), Some("t.json"));
    }

    #[test]
    fn rejects_missing_requests_and_unknown_flags() {
        assert!(parse("--shard g=x.txt").is_err());
        assert!(parse("--requests q.jsonl").is_err()); // no shard
        assert!(parse("--shard g=x.txt --requests q.jsonl --listen :0").is_err());
    }

    // Under obs-off the span layer compiles to no-ops, so there is no
    // timeline to trace — the command still runs, but prints 0 spans.
    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn traces_a_request_file_end_to_end() {
        let dir = std::env::temp_dir().join("mbb-trace-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.txt");
        std::fs::write(&graph_path, "1 1\n1 2\n2 1\n2 2\n3 3\n").unwrap();
        let requests_path = dir.join("q.jsonl");
        std::fs::write(
            &requests_path,
            "{\"id\": 1, \"graph\": \"g\", \"kind\": \"solve\"}\n\
             {\"id\": 2, \"graph\": \"g\", \"kind\": \"solve\"}\n",
        )
        .unwrap();
        let trace_path = dir.join("t.json");
        let options = parse(&format!(
            "--shard g={} --requests {} --trace-file {}",
            graph_path.display(),
            requests_path.display(),
            trace_path.display()
        ))
        .unwrap();
        let out = run(&options).unwrap();
        assert!(out.contains("serve.execute"), "{out}");
        assert!(out.contains("solve.heuristic"), "{out}");
        assert!(out.contains("serve.queue"), "{out}");
        assert!(out.contains("2 completed"), "{out}");

        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let value: serde_json::Value = serde_json::from_str(&trace).unwrap();
        let events = value.as_array().expect("trace is a JSON array");
        assert!(!events.is_empty());
        assert_eq!(events[0].get("ph").and_then(|v| v.as_str()), Some("X"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
