//! `mbb serve` — resident mode: serve a JSONL request stream from stdin
//! until EOF, with cross-batch EDF admission control.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mbb_obs as obs;
use mbb_serve::{ShardedFleet, StreamConfig, StreamServer};
use mbb_store::GraphStore;

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb serve --shard <id>=<edge-list-file> [--shard ...]
                 [--workers <N>] [--queue-depth <N>] [--fairness-burst <N>]
                 [--stats] [--trace-file <out.json>]
                 [--listen <addr>] [--unix <path>] [--max-conns <N>]

Builds one engine session per --shard (routable by its <id>), then stays
resident: one JSON request per stdin line, one JSON event per stdout
line as requests complete, until stdin closes. Unlike `mbb serve-batch`
(one file, one batch, exit), requests are admitted to a global
deadline-soonest queue as they arrive — a later tight-deadline request
overtakes queued slack ones — with:

  backpressure   the queue holds at most --queue-depth requests
                 (default 1024); when full, reading stdin pauses
  load-shedding  a request whose deadline budget is already blown is
                 answered with {\"error_kind\": \"shed\"}, never executed
  fairness       one shard wins at most --fairness-burst consecutive
                 slots while another has queued work (default 8; 0 = off)

Control lines manage the resident fleet without a restart:

  {\"control\": \"stats\"}                           counters snapshot
  {\"control\": \"drain\"}                           wait for quiescence
  {\"control\": \"reload\", \"graph\": <id>, \"source\": <file>}
                                  swap a shard's graph; in-flight and
                                  already-queued requests finish on the
                                  old session, later ones see the new one

--workers 0 uses one worker per core (default 1). --stats prints a final
stats line at EOF. Shards and reload sources resolve through the graph
store (.mbbg caches apply; MBB_CACHE=off disables). The wire schema is
documented in docs/SERVING.md (\"Resident mode\").

--trace-file turns span recording on and streams every completed span —
parse, admission wait, queue, the solver stages, encode, outbox — to
FILE as a Chrome trace_event JSON array (load via chrome://tracing or
Perfetto). The array is closed at EOF; in socket mode the server runs
until killed, so the trailing `]` may be missing — both viewers accept
that. A `{\"control\": \"metrics\"}` line answers with latency histogram
quantiles; see docs/OBSERVABILITY.md.

Socket mode (requires a build with --features socket): --listen binds a
TCP address (port 0 picks a free port), --unix a Unix-domain socket
path; both may be given. Each client connection carries its own JSONL
stream into the same shared admission queue — EDF, backpressure,
shedding and fairness hold across connections — and responses return on
the originating connection. At most --max-conns clients are served
concurrently (default 64; later clients get one
{\"error_kind\": \"overloaded\"} line). On startup a single
{\"listening\": ...} line reports the resolved address; the server then
runs until killed. stdin is not read in socket mode. See
docs/SERVING.md (\"Socket mode\").";

/// Parsed `serve` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// `(shard id, graph source)` pairs, in registration order.
    pub shards: Vec<(String, String)>,
    /// Worker pool size (0 = one per core).
    pub workers: usize,
    /// Admission queue bound.
    pub queue_depth: usize,
    /// Consecutive-pop cap per shard (0 disables).
    pub fairness_burst: usize,
    /// Emit a final stats line at EOF.
    pub stats: bool,
    /// TCP listen address (socket mode).
    pub listen: Option<String>,
    /// Unix-domain socket path (socket mode).
    pub unix: Option<String>,
    /// Concurrent-connection cap in socket mode.
    pub max_conns: usize,
    /// Stream completed spans to this path as Chrome trace_event JSON.
    pub trace_file: Option<String>,
}

impl ServeOptions {
    /// Parses the subcommand's argv (after `serve`).
    pub fn parse(args: &[String]) -> Result<ServeOptions, String> {
        let defaults = StreamConfig::default();
        let mut options = ServeOptions {
            shards: Vec::new(),
            workers: defaults.workers,
            queue_depth: defaults.queue_depth,
            fairness_burst: defaults.fairness_burst,
            stats: false,
            listen: None,
            unix: None,
            max_conns: 64,
            trace_file: None,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            let number = |flag: &str, value: String| {
                value
                    .parse::<usize>()
                    .map_err(|_| format!("{flag}: bad number {value:?}"))
            };
            match arg.as_str() {
                "--stats" => options.stats = true,
                "--shard" => {
                    let value = value_of("--shard")?;
                    let (id, path) = value
                        .split_once('=')
                        .ok_or_else(|| format!("--shard: expected <id>=<file>, got {value:?}"))?;
                    if id.is_empty() || path.is_empty() {
                        return Err(format!("--shard: expected <id>=<file>, got {value:?}"));
                    }
                    options.shards.push((id.to_string(), path.to_string()));
                }
                "--workers" => options.workers = number("--workers", value_of("--workers")?)?,
                "--queue-depth" => {
                    options.queue_depth = number("--queue-depth", value_of("--queue-depth")?)?;
                    if options.queue_depth == 0 {
                        return Err("--queue-depth must be at least 1".to_string());
                    }
                }
                "--fairness-burst" => {
                    options.fairness_burst =
                        number("--fairness-burst", value_of("--fairness-burst")?)?;
                }
                "--listen" => options.listen = Some(value_of("--listen")?),
                "--unix" => options.unix = Some(value_of("--unix")?),
                "--trace-file" => options.trace_file = Some(value_of("--trace-file")?),
                "--max-conns" => {
                    options.max_conns = number("--max-conns", value_of("--max-conns")?)?;
                    if options.max_conns == 0 {
                        return Err("--max-conns must be at least 1".to_string());
                    }
                }
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        if options.shards.is_empty() {
            return Err("at least one --shard <id>=<file> is required".to_string());
        }
        Ok(options)
    }
}

/// Builds the configured fleet + server (shared by the stdin and
/// socket front-ends, and by `mbb trace`).
pub(crate) fn build_server(options: &ServeOptions) -> Result<StreamServer, String> {
    let store = GraphStore::from_env();
    let mut fleet = ShardedFleet::new();
    for (id, path) in &options.shards {
        fleet
            .add_shard_from_store(id.clone(), &store, path)
            .map_err(|e| e.to_string())?;
    }
    let config = StreamConfig {
        workers: options.workers,
        queue_depth: options.queue_depth,
        fairness_burst: options.fairness_burst,
        stats_on_exit: options.stats,
    };
    Ok(StreamServer::new(fleet, config).with_store(store))
}

/// Background collector for `--trace-file`: enables span recording and
/// streams completed spans to a Chrome trace_event JSON file while the
/// serve loop runs.
struct TraceFileWorker {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<std::io::Result<u64>>,
    path: String,
}

impl TraceFileWorker {
    /// Creates the file, turns span recording on, and starts the drain
    /// thread (~5 ms cadence — rings hold 4096 records per thread, so
    /// even a busy fleet is drained long before overflow).
    fn start(path: &str) -> Result<TraceFileWorker, String> {
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        let mut writer = obs::TraceWriter::new(std::io::BufWriter::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        obs::enable();
        let stop = Arc::new(AtomicBool::new(false));
        let observed = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut failed: Option<std::io::Error> = None;
            loop {
                // Order matters: read the flag *before* draining, so the
                // final pass (after the serve loop emitted its last
                // span) still sweeps every ring.
                let stopping = observed.load(Ordering::SeqCst);
                obs::drain(|record| {
                    if failed.is_none() {
                        if let Err(e) = writer.write(&record) {
                            failed = Some(e);
                        }
                    }
                });
                if stopping {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            if let Some(e) = failed {
                return Err(e);
            }
            let spans = writer.events();
            writer.finish()?;
            Ok(spans)
        });
        Ok(TraceFileWorker {
            stop,
            handle,
            path: path.to_string(),
        })
    }

    /// Stops recording, joins the drain thread (one final sweep), and
    /// reports the span count on stderr — stdout belongs to the wire.
    fn finish(self) -> Result<(), String> {
        obs::disable();
        self.stop.store(true, Ordering::SeqCst);
        match self.handle.join() {
            Ok(Ok(spans)) => {
                eprintln!("trace: wrote {spans} spans to {}", self.path);
                Ok(())
            }
            Ok(Err(e)) => Err(format!("{}: {e}", self.path)),
            Err(_) => Err(format!("{}: trace collector panicked", self.path)),
        }
    }
}

/// Runs the resident loop over explicit input/output streams — the
/// testable core of [`run`].
pub fn run_with<R: BufRead, W: Write + Send>(
    options: &ServeOptions,
    input: R,
    output: W,
) -> Result<(), String> {
    let server = build_server(options)?;
    let tracer = options
        .trace_file
        .as_deref()
        .map(TraceFileWorker::start)
        .transpose()?;
    let served = server.serve(input, output).map_err(|e| e.to_string());
    // Always join the collector (the final drain closes the JSON
    // array), but a serve-loop error outranks a trace-file one.
    let traced = tracer.map(TraceFileWorker::finish).transpose();
    served?;
    traced?;
    Ok(())
}

/// Socket mode: bind the configured listeners, announce them on one
/// stdout line, and serve until killed.
#[cfg(feature = "socket")]
fn run_socket(options: &ServeOptions) -> Result<(), String> {
    use mbb_serve::socket::SocketFrontEnd;
    let server = build_server(options)?;
    let mut front = SocketFrontEnd::new(server).with_max_conns(options.max_conns);
    if let Some(addr) = &options.listen {
        front = front.with_tcp(addr.clone());
    }
    if let Some(path) = &options.unix {
        front = front.with_unix(path.clone());
    }
    let bound = front.bind().map_err(|e| e.to_string())?;
    let tracer = options
        .trace_file
        .as_deref()
        .map(TraceFileWorker::start)
        .transpose()?;
    // One machine-readable announcement so clients (and the CI smoke)
    // can discover the resolved address — essential with port 0.
    let mut announce = Vec::new();
    if let Some(addr) = bound.tcp_addr() {
        announce.push(format!("\"listening\":\"{addr}\""));
    }
    if let Some(path) = bound.unix_path() {
        announce.push(format!("\"unix\":{:?}", path.display().to_string()));
    }
    let shards: Vec<String> = options
        .shards
        .iter()
        .map(|(id, _)| format!("{id:?}"))
        .collect();
    announce.push(format!("\"shards\":[{}]", shards.join(",")));
    println!("{{{}}}", announce.join(","));
    // Flush so a piped consumer sees the line before the first client.
    let _ = std::io::stdout().flush();
    bound.serve();
    // serve() runs until the process is killed; if it ever returns,
    // close the trace cleanly.
    tracer.map(TraceFileWorker::finish).transpose()?;
    Ok(())
}

#[cfg(not(feature = "socket"))]
fn run_socket(_options: &ServeOptions) -> Result<(), String> {
    Err("socket mode requires a build with --features socket (cargo build -p mbb-cli --features socket)"
        .to_string())
}

/// Runs the subcommand: socket mode when `--listen`/`--unix` is given,
/// otherwise resident on stdin/stdout until EOF. Events are written as
/// they happen, so the returned string is empty.
pub fn run(options: &ServeOptions) -> Result<String, String> {
    if options.listen.is_some() || options.unix.is_some() {
        run_socket(options)?;
    } else {
        run_with(options, std::io::stdin().lock(), std::io::stdout())?;
    }
    Ok(String::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<ServeOptions, String> {
        ServeOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_options_with_defaults() {
        let o = parse("--shard a=x.txt").unwrap();
        assert_eq!(o.shards, vec![("a".to_string(), "x.txt".to_string())]);
        assert_eq!(o.workers, 1);
        assert_eq!(o.queue_depth, 1024);
        assert_eq!(o.fairness_burst, 8);
        assert!(!o.stats);

        let o = parse(
            "--shard a=x.txt --shard b=y.txt --workers 0 --queue-depth 4 \
             --fairness-burst 0 --stats",
        )
        .unwrap();
        assert_eq!(o.shards.len(), 2);
        assert_eq!(o.workers, 0);
        assert_eq!(o.queue_depth, 4);
        assert_eq!(o.fairness_burst, 0);
        assert!(o.stats);
    }

    #[test]
    fn rejects_bad_options() {
        assert!(parse("").is_err());
        assert!(parse("--shard ax.txt").is_err());
        assert!(parse("--shard a=x.txt --queue-depth 0").is_err());
        assert!(parse("--shard a=x.txt --workers many").is_err());
        assert!(parse("--shard a=x.txt --frobnicate").is_err());
        assert!(parse("--shard a=x.txt --max-conns 0").is_err());
        assert!(parse("--shard a=x.txt --listen").is_err());
    }

    #[test]
    fn parses_socket_options() {
        let o = parse("--shard a=x.txt").unwrap();
        assert_eq!(o.listen, None);
        assert_eq!(o.unix, None);
        assert_eq!(o.max_conns, 64);

        let o = parse("--shard a=x.txt --listen 127.0.0.1:0 --unix /tmp/mbb.sock --max-conns 2")
            .unwrap();
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.unix.as_deref(), Some("/tmp/mbb.sock"));
        assert_eq!(o.max_conns, 2);
    }

    #[cfg(not(feature = "socket"))]
    #[test]
    fn socket_mode_without_the_feature_is_a_clear_error() {
        let options = parse("--shard a=x.txt --listen 127.0.0.1:0").unwrap();
        let err = run(&options).unwrap_err();
        assert!(err.contains("--features socket"), "{err}");
    }

    #[test]
    fn resident_loop_end_to_end_over_pipes() {
        let dir = std::env::temp_dir().join("mbb-serve-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.txt");
        std::fs::write(&graph_path, "1 1\n1 2\n2 1\n2 2\n3 3\n").unwrap();
        let options = parse(&format!("--shard g={} --stats", graph_path.display())).unwrap();
        let input = "{\"id\": 1, \"graph\": \"g\", \"kind\": \"solve\"}\n\
                     {\"id\": 2, \"graph\": \"g\", \"kind\": \"solve\", \"deadline_ms\": 0}\n\
                     {\"control\": \"drain\"}\n";
        let mut output = Vec::new();
        run_with(&options, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            4,
            "response + shed + drain ack + stats:\n{text}"
        );
        assert!(text.contains("\"half_size\":2"), "{text}");
        assert!(text.contains("\"error_kind\":\"shed\""), "{text}");
        assert!(text.contains("\"control\":\"drain\""), "{text}");
        assert!(lines[3].contains("\"stats\""), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
