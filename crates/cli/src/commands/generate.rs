//! `mbb generate` — write a synthetic bipartite graph as an edge list.

use mbb_bigraph::generators::{
    chung_lu_bipartite, complete, dense_uniform, plant_balanced_biclique, uniform_edges,
    ChungLuParams,
};
use mbb_bigraph::graph::BipartiteGraph;
use mbb_bigraph::io::write_edge_list_file;

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb generate <out-file> --kind <dense|sparse|uniform|complete> [options]

Writes a seeded synthetic bipartite graph as a KONECT-style edge list.

options:
  --kind dense      uniform G(L, R, p): needs --density (the Table 4 workload)
  --kind sparse     Chung–Lu power law: needs --edges (the Table 5 stand-in)
  --kind uniform    exactly --edges uniform random edges
  --kind complete   complete bipartite graph K(L, R)
  --left <N>        left side size (default 128)
  --right <N>       right side size (default 128)
  --density <P>     edge probability for dense (default 0.85)
  --edges <M>       edge count for sparse/uniform (default 4x sides)
  --exponent <X>    power-law exponent for sparse (default 0.75)
  --seed <S>        RNG seed (default 1)
  --plant <K>       additionally plant a K x K balanced biclique";

/// Graph family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `dense_uniform` with an edge probability.
    Dense,
    /// Chung–Lu power-law graph with a target edge count.
    Sparse,
    /// Exactly `edges` uniform random edges.
    Uniform,
    /// Complete bipartite graph.
    Complete,
}

/// Parsed `generate` options.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateOptions {
    /// Output path.
    pub output: String,
    /// Family.
    pub kind: Kind,
    /// `|L|`.
    pub left: u32,
    /// `|R|`.
    pub right: u32,
    /// Density for [`Kind::Dense`].
    pub density: f64,
    /// Edge count for [`Kind::Sparse`] / [`Kind::Uniform`].
    pub edges: Option<usize>,
    /// Power-law exponent for [`Kind::Sparse`].
    pub exponent: f64,
    /// Seed.
    pub seed: u64,
    /// Planted balanced-biclique half-size.
    pub plant: Option<u32>,
}

impl GenerateOptions {
    /// Parses the subcommand's argv (after `generate`).
    pub fn parse(args: &[String]) -> Result<GenerateOptions, String> {
        let mut options = GenerateOptions {
            output: String::new(),
            kind: Kind::Sparse,
            left: 128,
            right: 128,
            density: 0.85,
            edges: None,
            exponent: 0.75,
            seed: 1,
            plant: None,
        };
        let mut kind_given = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--kind" => {
                    let value = value_of("--kind")?;
                    options.kind = match value.as_str() {
                        "dense" => Kind::Dense,
                        "sparse" => Kind::Sparse,
                        "uniform" => Kind::Uniform,
                        "complete" => Kind::Complete,
                        other => return Err(format!("unknown kind {other:?}")),
                    };
                    kind_given = true;
                }
                "--left" => {
                    options.left = parse_number(&value_of("--left")?, "--left")?;
                }
                "--right" => {
                    options.right = parse_number(&value_of("--right")?, "--right")?;
                }
                "--density" => {
                    let value = value_of("--density")?;
                    options.density = value
                        .parse()
                        .map_err(|_| format!("--density: bad number {value:?}"))?;
                    if !(0.0..=1.0).contains(&options.density) {
                        return Err(format!("--density must be in [0, 1], got {value}"));
                    }
                }
                "--edges" => {
                    options.edges = Some(parse_number(&value_of("--edges")?, "--edges")?);
                }
                "--exponent" => {
                    let value = value_of("--exponent")?;
                    options.exponent = value
                        .parse()
                        .map_err(|_| format!("--exponent: bad number {value:?}"))?;
                }
                "--seed" => {
                    options.seed = parse_number(&value_of("--seed")?, "--seed")?;
                }
                "--plant" => {
                    options.plant = Some(parse_number(&value_of("--plant")?, "--plant")?);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown option {other:?}"));
                }
                path => {
                    if !options.output.is_empty() {
                        return Err(format!("unexpected extra argument {path:?}"));
                    }
                    options.output = path.to_string();
                }
            }
        }
        if options.output.is_empty() {
            return Err("missing output file".to_string());
        }
        if !kind_given {
            return Err("--kind is required".to_string());
        }
        Ok(options)
    }

    /// Builds the graph described by the options (no I/O).
    pub fn build(&self) -> BipartiteGraph {
        let default_edges = (self.left as usize + self.right as usize) * 2;
        let graph = match self.kind {
            Kind::Dense => dense_uniform(self.left, self.right, self.density, self.seed),
            Kind::Sparse => chung_lu_bipartite(
                &ChungLuParams {
                    num_left: self.left,
                    num_right: self.right,
                    num_edges: self.edges.unwrap_or(default_edges),
                    left_exponent: self.exponent,
                    right_exponent: self.exponent,
                },
                self.seed,
            ),
            Kind::Uniform => uniform_edges(
                self.left,
                self.right,
                self.edges.unwrap_or(default_edges),
                self.seed,
            ),
            Kind::Complete => complete(self.left, self.right),
        };
        match self.plant {
            Some(k) => plant_balanced_biclique(&graph, k).0,
            None => graph,
        }
    }
}

fn parse_number<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: bad number {value:?}"))
}

/// Runs the subcommand, returning a one-line summary.
pub fn run(options: &GenerateOptions) -> Result<String, String> {
    let graph = options.build();
    write_edge_list_file(&graph, &options.output)
        .map_err(|e| format!("{}: {e}", options.output))?;
    Ok(format!(
        "wrote {}: |L|={} |R|={} |E|={}\n",
        options.output,
        graph.num_left(),
        graph.num_right(),
        graph.num_edges()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<GenerateOptions, String> {
        GenerateOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_dense_invocation() {
        let o = parse("out.txt --kind dense --left 64 --right 32 --density 0.9 --seed 7").unwrap();
        assert_eq!(o.kind, Kind::Dense);
        assert_eq!(o.left, 64);
        assert_eq!(o.right, 32);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn kind_is_required() {
        assert!(parse("out.txt").is_err());
    }

    #[test]
    fn density_range_checked() {
        assert!(parse("out.txt --kind dense --density 1.5").is_err());
    }

    #[test]
    fn build_complete() {
        let o = parse("out.txt --kind complete --left 3 --right 4").unwrap();
        let g = o.build();
        assert_eq!(g.num_edges(), 12);
    }

    #[test]
    fn build_uniform_edge_count() {
        let o = parse("out.txt --kind uniform --left 10 --right 10 --edges 25").unwrap();
        assert_eq!(o.build().num_edges(), 25);
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let o = parse("out.txt --kind sparse --left 50 --right 50 --edges 200 --seed 3").unwrap();
        let g1 = o.build();
        let g2 = o.build();
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn plant_guarantees_biclique() {
        let o = parse("out.txt --kind sparse --left 40 --right 40 --edges 100 --plant 5 --seed 2")
            .unwrap();
        let g = o.build();
        let best = mbb_core::MbbSolver::new().solve(&g).biclique;
        assert!(best.half_size() >= 5);
    }

    #[test]
    fn unknown_kind_rejected() {
        assert!(parse("out.txt --kind fractal").is_err());
    }
}
