//! `mbb bench-obs` — measure the wall-clock overhead of span
//! instrumentation (enabled vs disabled) and write `BENCH_obs.json`.

use mbb_bench::{run_obs_bench, ObsBenchOptions, ObsBenchReport, ScaleCaps, Table};

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb bench-obs [--out FILE] [--caps small|default|large]
                     [--seed N] [--quick] [--check FILE]

Times full end-to-end solves on seeded stand-ins twice — with span
recording disabled (the production default) and enabled (records
flowing into the per-thread rings) — and reports the relative overhead.
The report embeds its gate: aggregate overhead must stay at or below
3% (mbb_bench::obs::MAX_OVERHEAD_PCT).

options:
  --out FILE    output JSON path (default BENCH_obs.json)
  --caps C      stand-in scale caps (default: default)
  --seed N      workload seed (default 42)
  --quick       fewer datasets, more repetitions per mode (CI smoke)
  --check FILE  validate an existing report instead of benchmarking:
                parse FILE, re-run the schema/consistency checks AND
                the overhead gate, exit non-zero on any violation";

/// Parsed `bench-obs` options.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchObsOptions {
    /// Output JSON path.
    pub out: String,
    /// Caps label (`small`/`default`/`large`).
    pub caps: String,
    /// Workload seed.
    pub seed: u64,
    /// Quick (smoke) mode.
    pub quick: bool,
    /// Validate this file instead of running.
    pub check: Option<String>,
}

impl BenchObsOptions {
    /// Parses the subcommand's argv (after `bench-obs`).
    pub fn parse(args: &[String]) -> Result<BenchObsOptions, String> {
        let mut options = BenchObsOptions {
            out: "BENCH_obs.json".to_string(),
            caps: "default".to_string(),
            seed: 42,
            quick: false,
            check: None,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--out" => options.out = value_of("--out")?,
                "--caps" => {
                    let value = value_of("--caps")?;
                    if !matches!(value.as_str(), "small" | "default" | "large") {
                        return Err(format!("--caps must be small|default|large, got {value:?}"));
                    }
                    options.caps = value;
                }
                "--seed" => {
                    let value = value_of("--seed")?;
                    options.seed = value
                        .parse()
                        .map_err(|_| format!("--seed: bad number {value:?}"))?;
                }
                "--quick" => options.quick = true,
                "--check" => options.check = Some(value_of("--check")?),
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        Ok(options)
    }

    fn bench_options(&self) -> ObsBenchOptions {
        let caps = match self.caps.as_str() {
            "small" => ScaleCaps::small(),
            "large" => ScaleCaps {
                max_edges: 200_000,
                max_vertices: 150_000,
            },
            _ => ScaleCaps::default(),
        };
        ObsBenchOptions {
            seed: self.seed,
            caps,
            caps_label: self.caps.clone(),
            quick: self.quick,
        }
    }
}

/// Renders the per-dataset overhead table.
fn summarise(report: &ObsBenchReport) -> String {
    let mut out = String::new();
    let mut table = Table::new(&["dataset", "base s", "instrumented s", "overhead", "spans"]);
    for run in &report.runs {
        let pct = (run.instrumented_seconds - run.base_seconds) / run.base_seconds * 100.0;
        table.row(vec![
            run.dataset.clone(),
            format!("{:.4}", run.base_seconds),
            format!("{:.4}", run.instrumented_seconds),
            format!("{pct:+.2}%"),
            run.spans_recorded.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\naggregate overhead: {:+.2}% (gate: {:.1}%)\n",
        report.overhead_pct, report.max_overhead_pct
    ));
    out
}

/// Runs the subcommand.
pub fn run(options: &BenchObsOptions) -> Result<String, String> {
    if let Some(path) = &options.check {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let report: ObsBenchReport =
            serde_json::from_str(&text).map_err(|e| format!("{path}: bad JSON: {e}"))?;
        report
            .validate()
            .map_err(|e| format!("{path}: invalid report: {e}"))?;
        report.check_gate().map_err(|e| format!("{path}: {e}"))?;
        return Ok(format!(
            "{path}: valid obs bench report ({} runs, overhead {:+.2}% within the {:.1}% gate)\n",
            report.runs.len(),
            report.overhead_pct,
            report.max_overhead_pct
        ));
    }

    let cache = mbb_bench::StandInCache::from_env();
    let report = run_obs_bench(&options.bench_options(), &cache);
    let json =
        serde_json::to_string_pretty(&report).map_err(|e| format!("serialise report: {e}"))?;
    std::fs::write(&options.out, json.as_bytes()).map_err(|e| format!("{}: {e}", options.out))?;

    let gate = match report.check_gate() {
        Ok(()) => String::new(),
        Err(e) => format!("warning: {e}\n"),
    };
    Ok(format!(
        "{}{}\nwrote {} ({} runs)\n",
        gate,
        summarise(&report),
        options.out,
        report.runs.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<BenchObsOptions, String> {
        BenchObsOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_and_options() {
        let o = parse("").unwrap();
        assert_eq!(o.out, "BENCH_obs.json");
        assert_eq!(o.caps, "default");
        assert_eq!(o.seed, 42);
        assert!(!o.quick);

        let o = parse("--out /tmp/o.json --caps small --seed 7 --quick").unwrap();
        assert_eq!(o.out, "/tmp/o.json");
        assert_eq!(o.caps, "small");
        assert_eq!(o.seed, 7);
        assert!(o.quick);

        assert!(parse("--caps huge").is_err());
        assert!(parse("--frobnicate").is_err());
    }

    #[test]
    fn check_mode_rejects_missing_and_malformed_files() {
        let missing = BenchObsOptions {
            check: Some("/nonexistent/obs.json".into()),
            ..parse("").unwrap()
        };
        assert!(run(&missing).is_err());

        let dir = std::env::temp_dir().join("mbb-bench-obs-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, b"{\"schema_version\": 999}").unwrap();
        let malformed = BenchObsOptions {
            check: Some(bad.to_string_lossy().into_owned()),
            ..parse("").unwrap()
        };
        assert!(run(&malformed).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    /// The committed artefact must pass the gate it documents.
    #[test]
    fn check_mode_accepts_the_committed_report() {
        let committed =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
        let check = BenchObsOptions {
            check: Some(committed.to_string_lossy().into_owned()),
            ..parse("").unwrap()
        };
        let text = run(&check).expect("the committed report must validate");
        assert!(text.contains("within the"), "{text}");
    }

    /// An over-gate report must be rejected by `--check` — the gate is
    /// enforced on the file, not just printed at generation time.
    #[test]
    fn check_mode_rejects_excess_overhead() {
        let committed =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
        let text = std::fs::read_to_string(committed).unwrap();
        let mut report: ObsBenchReport = serde_json::from_str(&text).unwrap();
        let base: f64 = report.runs.iter().map(|r| r.base_seconds).sum();
        for run in &mut report.runs {
            run.instrumented_seconds = run.base_seconds * 1.10;
        }
        let instrumented: f64 = report.runs.iter().map(|r| r.instrumented_seconds).sum();
        report.overhead_pct = (instrumented - base) / base * 100.0;

        let dir = std::env::temp_dir().join("mbb-bench-obs-gate-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.json");
        std::fs::write(&path, serde_json::to_string_pretty(&report).unwrap()).unwrap();
        let check = BenchObsOptions {
            check: Some(path.to_string_lossy().into_owned()),
            ..parse("").unwrap()
        };
        let err = run(&check).expect_err("10% overhead must fail the gate");
        assert!(err.contains("exceeds"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
