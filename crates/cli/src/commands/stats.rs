//! `mbb stats` — structural profile of an edge list.

use mbb_bigraph::metrics::GraphProfile;
use serde::Serialize;

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb stats <edge-list-file> [--full] [--json]

Prints a structural profile: sizes, density, degree summaries and the
degeneracy, plus how the graph was loaded (parsed vs. binary cache hit,
with the load time). With --full, also the bidegeneracy (the paper's
sparsity measure) and the butterfly count — these cost O(Σ deg²), so use
them on graphs that fit that budget.";

/// Parsed `stats` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsOptions {
    /// Input path.
    pub input: String,
    /// Also compute bidegeneracy and butterflies.
    pub full: bool,
    /// Emit JSON.
    pub json: bool,
}

impl StatsOptions {
    /// Parses the subcommand's argv (after `stats`).
    pub fn parse(args: &[String]) -> Result<StatsOptions, String> {
        let mut options = StatsOptions {
            input: String::new(),
            full: false,
            json: false,
        };
        for arg in args {
            match arg.as_str() {
                "--full" => options.full = true,
                "--json" => options.json = true,
                other if other.starts_with('-') => {
                    return Err(format!("unknown option {other:?}"));
                }
                path => {
                    if !options.input.is_empty() {
                        return Err(format!("unexpected extra argument {path:?}"));
                    }
                    options.input = path.to_string();
                }
            }
        }
        if options.input.is_empty() {
            return Err("missing input file".to_string());
        }
        Ok(options)
    }
}

#[derive(Serialize)]
struct JsonProfile {
    num_left: usize,
    num_right: usize,
    num_edges: usize,
    density: f64,
    left_max_degree: usize,
    left_mean_degree: f64,
    right_max_degree: usize,
    right_mean_degree: f64,
    degeneracy: u32,
    #[serde(skip_serializing_if = "Option::is_none")]
    bidegeneracy: Option<u32>,
    #[serde(skip_serializing_if = "Option::is_none")]
    butterflies: Option<u64>,
    mbb_half_upper_bound: usize,
    load_provenance: &'static str,
    load_ms: f64,
}

/// Runs the subcommand, returning the rendered output.
pub fn run(options: &StatsOptions) -> Result<String, String> {
    let loaded = crate::commands::load_graph(&options.input)?;
    let graph = &*loaded.graph;
    let profile = if options.full {
        GraphProfile::of(graph)
    } else {
        GraphProfile::cheap(graph)
    };
    if options.json {
        let json = JsonProfile {
            num_left: profile.num_left,
            num_right: profile.num_right,
            num_edges: profile.num_edges,
            density: profile.density,
            left_max_degree: profile.left_degrees.max,
            left_mean_degree: profile.left_degrees.mean,
            right_max_degree: profile.right_degrees.max,
            right_mean_degree: profile.right_degrees.mean,
            degeneracy: profile.degeneracy,
            bidegeneracy: options.full.then_some(profile.bidegeneracy),
            butterflies: options.full.then_some(profile.butterflies),
            mbb_half_upper_bound: profile.mbb_half_upper_bound(),
            load_provenance: loaded.provenance.label(),
            load_ms: loaded.load_time.as_secs_f64() * 1e3,
        };
        let mut out = serde_json::to_string_pretty(&json).expect("profile serialises");
        out.push('\n');
        return Ok(out);
    }
    let mut out = profile.to_string();
    if !options.full {
        out = out.replace(
            ", δ̈ = 0, butterflies = 0",
            " (use --full for δ̈/butterflies)",
        );
    }
    out.push_str(&format!(
        "\nMBB half-size upper bound: {}\n",
        profile.mbb_half_upper_bound()
    ));
    out.push_str(&format!("load: {}\n", loaded.describe()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<StatsOptions, String> {
        StatsOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flags() {
        let o = parse("g.txt --full --json").unwrap();
        assert!(o.full && o.json);
        assert_eq!(o.input, "g.txt");
    }

    #[test]
    fn requires_input() {
        assert!(parse("--json").is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(parse("g.txt --verbose").is_err());
    }

    #[test]
    fn rejects_two_inputs() {
        assert!(parse("a.txt b.txt").is_err());
    }
}
