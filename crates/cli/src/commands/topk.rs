//! `mbb topk` — the k best balanced bicliques of an edge list.

use std::time::Duration;

use mbb_core::MbbEngine;
use serde::Serialize;

/// Usage text for the subcommand.
pub const USAGE: &str = "\
usage: mbb topk <edge-list-file> --k <N> [--budget-secs <N>]
                [--threads <N>] [--json]

Prints the N maximal bicliques with the largest balanced size
min(|A|, |B|), best first, 1-based ids matching the input file.
--threads 0 uses one worker per core (reserved for the engine's
parallel stages; the ranking itself is sequential).";

/// Parsed `topk` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopkOptions {
    /// Input path.
    pub input: String,
    /// How many results.
    pub k: usize,
    /// Time budget in seconds.
    pub budget_secs: Option<u64>,
    /// Engine worker threads (0 = one per core).
    pub threads: usize,
    /// Emit JSON.
    pub json: bool,
}

impl TopkOptions {
    /// Parses the subcommand's argv (after `topk`).
    pub fn parse(args: &[String]) -> Result<TopkOptions, String> {
        let mut options = TopkOptions {
            input: String::new(),
            k: 0,
            budget_secs: None,
            threads: 1,
            json: false,
        };
        let mut k_given = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--json" => options.json = true,
                "--k" => {
                    let value = value_of("--k")?;
                    options.k = value
                        .parse()
                        .map_err(|_| format!("--k: bad number {value:?}"))?;
                    k_given = true;
                }
                "--budget-secs" => {
                    let value = value_of("--budget-secs")?;
                    options.budget_secs = Some(
                        value
                            .parse()
                            .map_err(|_| format!("--budget-secs: bad number {value:?}"))?,
                    );
                }
                "--threads" => {
                    let value = value_of("--threads")?;
                    options.threads = value
                        .parse()
                        .map_err(|_| format!("--threads: bad number {value:?}"))?;
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown option {other:?}"));
                }
                path => {
                    if !options.input.is_empty() {
                        return Err(format!("unexpected extra argument {path:?}"));
                    }
                    options.input = path.to_string();
                }
            }
        }
        if options.input.is_empty() {
            return Err("missing input file".to_string());
        }
        if !k_given || options.k == 0 {
            return Err("--k is required and must be positive".to_string());
        }
        Ok(options)
    }
}

#[derive(Serialize)]
struct JsonResult {
    complete: bool,
    bicliques: Vec<JsonBiclique>,
}

#[derive(Serialize)]
struct JsonBiclique {
    rank: usize,
    balanced_size: usize,
    left: Vec<u32>,
    right: Vec<u32>,
}

/// Runs the subcommand, returning the rendered output.
pub fn run(options: &TopkOptions) -> Result<String, String> {
    let loaded = crate::commands::load_graph(&options.input)?;
    let graph = loaded.graph;
    let engine = MbbEngine::from_arc(graph, Default::default());
    let mut query = engine.query().threads(options.threads);
    if let Some(secs) = options.budget_secs {
        query = query.deadline(Duration::from_secs(secs));
    }
    let result = query.topk(options.k);
    let complete = result.termination.is_complete();
    let rows: Vec<JsonBiclique> = result
        .value
        .iter()
        .enumerate()
        .map(|(i, b)| JsonBiclique {
            rank: i + 1,
            balanced_size: b.balanced_size(),
            left: b.left.iter().map(|&u| u + 1).collect(),
            right: b.right.iter().map(|&v| v + 1).collect(),
        })
        .collect();
    if options.json {
        let mut out = serde_json::to_string_pretty(&JsonResult {
            complete,
            bicliques: rows,
        })
        .expect("result serialises");
        out.push('\n');
        return Ok(out);
    }
    let mut out = String::new();
    for row in &rows {
        out.push_str(&format!(
            "#{} balanced {}: {:?} x {:?}\n",
            row.rank, row.balanced_size, row.left, row.right
        ));
    }
    if !complete {
        out.push_str("[stopped early — ranking may be incomplete]\n");
    }
    if rows.is_empty() {
        out.push_str("no bicliques found\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<TopkOptions, String> {
        TopkOptions::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
    }

    #[test]
    fn parses_k() {
        let o = parse("g.txt --k 5 --json").unwrap();
        assert_eq!(o.k, 5);
        assert!(o.json);
        assert_eq!(o.threads, 1);
    }

    #[test]
    fn parses_threads() {
        let o = parse("g.txt --k 2 --threads 0").unwrap();
        assert_eq!(o.threads, 0);
    }

    #[test]
    fn k_is_required() {
        assert!(parse("g.txt").is_err());
        assert!(parse("g.txt --k 0").is_err());
    }

    #[test]
    fn requires_input() {
        assert!(parse("--k 3").is_err());
    }
}
