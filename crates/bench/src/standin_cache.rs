//! Binary cache for synthetic stand-ins, so repeated sweeps stop
//! re-generating the same graphs.
//!
//! The Table 5/6 and figure binaries regenerate every stand-in from its
//! `(spec, caps, seed)` triple on each run — deterministic, but the
//! Chung–Lu sampling plus plant construction dominates harness startup
//! once solver budgets are small. [`StandInCache`] keys a `.mbbg` graph
//! cache (plus a small JSON sidecar for the stand-in's provenance fields)
//! by that triple under one directory, and the sweep binaries load
//! through it.
//!
//! The cache directory defaults to `target/standin-cache`; the
//! `MBB_STANDIN_CACHE` environment variable overrides it (`off` disables
//! caching entirely). Stand-ins are bit-identical across machines for a
//! given triple, so a cache hit is always equivalent to regeneration —
//! any unreadable/corrupt entry is silently regenerated and rewritten.

use std::cell::Cell;
use std::path::PathBuf;

use mbb_datasets::{stand_in, DatasetSpec, ScaleCaps, StandIn};
use mbb_store::binfmt;
use serde::{Deserialize, Serialize};

/// Sidecar fields that make a cached graph a full [`StandIn`] again.
#[derive(Debug, Serialize, Deserialize, PartialEq)]
struct StandInMeta {
    /// Catalog name, re-checked on load against the requested spec.
    name: String,
    /// Linear scale factor the generator applied.
    scale: f64,
    /// Planted balanced-biclique half-size (optimum lower bound).
    planted_half: u32,
}

/// A directory of `.mbbg`-cached stand-ins keyed by `(name, caps, seed)`.
#[derive(Debug)]
pub struct StandInCache {
    dir: Option<PathBuf>,
    hits: Cell<usize>,
    misses: Cell<usize>,
}

impl StandInCache {
    /// A cache honouring `MBB_STANDIN_CACHE` (a directory, or `off`);
    /// defaults to `target/standin-cache`.
    pub fn from_env() -> StandInCache {
        let dir = match std::env::var("MBB_STANDIN_CACHE") {
            Ok(v) if v == "off" || v == "0" => None,
            Ok(v) => Some(PathBuf::from(v)),
            Err(_) => Some(PathBuf::from("target/standin-cache")),
        };
        StandInCache::at(dir)
    }

    /// A cache at an explicit directory (`None` disables caching).
    pub fn at(dir: Option<PathBuf>) -> StandInCache {
        StandInCache {
            dir,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The stand-in for a catalog entry: loaded from the cache when
    /// present, regenerated (and cached, best-effort) otherwise. The
    /// result is identical either way — generation is deterministic in
    /// `(spec, caps, seed)` and that whole triple is the cache key.
    pub fn get(&self, spec: &'static DatasetSpec, caps: ScaleCaps, seed: u64) -> StandIn {
        let Some(dir) = &self.dir else {
            return stand_in(spec, caps, seed);
        };
        let stem = format!(
            "{}-e{}-v{}-s{seed}",
            spec.name, caps.max_edges, caps.max_vertices
        );
        let graph_path = dir.join(format!("{stem}.mbbg"));
        let meta_path = dir.join(format!("{stem}.meta.json"));

        if let Some(standin) = self.try_load(spec, &graph_path, &meta_path) {
            self.hits.set(self.hits.get() + 1);
            return standin;
        }

        self.misses.set(self.misses.get() + 1);
        let standin = stand_in(spec, caps, seed);
        // Best-effort write: a read-only checkout just regenerates forever.
        let meta = StandInMeta {
            name: spec.name.to_string(),
            scale: standin.scale,
            planted_half: standin.planted_half,
        };
        if std::fs::create_dir_all(dir).is_ok()
            && binfmt::save_graph(&standin.graph, binfmt::SourceStamp::default(), &graph_path)
                .is_ok()
        {
            let _ = serde_json::to_string(&meta).map(|s| std::fs::write(&meta_path, s));
        }
        standin
    }

    fn try_load(
        &self,
        spec: &'static DatasetSpec,
        graph_path: &std::path::Path,
        meta_path: &std::path::Path,
    ) -> Option<StandIn> {
        let (graph, _) = binfmt::load_graph(graph_path).ok()?;
        let meta: StandInMeta =
            serde_json::from_str(&std::fs::read_to_string(meta_path).ok()?).ok()?;
        if meta.name != spec.name {
            return None;
        }
        Some(StandIn {
            graph,
            spec,
            scale: meta.scale,
            planted_half: meta.planted_half,
        })
    }

    /// One-line hit/miss summary for the end of a sweep.
    pub fn summary(&self) -> String {
        match &self.dir {
            Some(dir) => format!(
                "stand-in cache {}: {} hits, {} misses",
                dir.display(),
                self.hits.get(),
                self.misses.get()
            ),
            None => "stand-in cache off".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_datasets::find;

    #[test]
    fn disabled_cache_just_generates() {
        let cache = StandInCache::at(None);
        let spec = find("unicodelang").unwrap();
        let s = cache.get(spec, ScaleCaps::small(), 1);
        assert!(s.graph.num_edges() > 0);
        assert_eq!(cache.summary(), "stand-in cache off");
    }

    #[test]
    fn cache_roundtrip_is_identical_to_generation() {
        let dir = std::env::temp_dir().join(format!("mbb-standin-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = StandInCache::at(Some(dir.clone()));
        let spec = find("moreno-crime-crime").unwrap();

        let cold = cache.get(spec, ScaleCaps::small(), 5);
        let warm = cache.get(spec, ScaleCaps::small(), 5);
        assert_eq!(cache.hits.get(), 1);
        assert_eq!(cache.misses.get(), 1);
        assert_eq!(warm.scale, cold.scale);
        assert_eq!(warm.planted_half, cold.planted_half);
        assert_eq!(warm.graph.left_offsets(), cold.graph.left_offsets());
        assert_eq!(warm.graph.left_neighbors(), cold.graph.left_neighbors());
        assert_eq!(warm.graph.right_offsets(), cold.graph.right_offsets());
        assert_eq!(warm.graph.right_neighbors(), cold.graph.right_neighbors());

        // A fresh generation agrees too (determinism + faithful cache).
        let direct = stand_in(spec, ScaleCaps::small(), 5);
        assert_eq!(direct.graph.left_neighbors(), warm.graph.left_neighbors());

        // Different seed, different entry.
        let other = cache.get(spec, ScaleCaps::small(), 6);
        assert_eq!(cache.misses.get(), 2);
        assert!(
            other.graph.num_edges() != warm.graph.num_edges()
                || other.graph.left_neighbors() != warm.graph.left_neighbors()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_regenerate() {
        let dir = std::env::temp_dir().join(format!("mbb-standin-corrupt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = StandInCache::at(Some(dir.clone()));
        let spec = find("opsahl-ucforum").unwrap();
        cache.get(spec, ScaleCaps::small(), 2);
        // Truncate the graph file: the next get must regenerate, not fail.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.path().extension().is_some_and(|x| x == "mbbg"))
            .unwrap();
        let bytes = std::fs::read(entry.path()).unwrap();
        std::fs::write(entry.path(), &bytes[..bytes.len() / 2]).unwrap();
        let again = cache.get(spec, ScaleCaps::small(), 2);
        assert!(again.graph.num_edges() > 0);
        assert_eq!(cache.misses.get(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
