//! Binary cache for synthetic stand-ins, so repeated sweeps stop
//! re-generating the same graphs.
//!
//! The Table 5/6 and figure binaries regenerate every stand-in from its
//! `(spec, caps, seed)` triple on each run — deterministic, but the
//! Chung–Lu sampling plus plant construction dominates harness startup
//! once solver budgets are small. [`StandInCache`] keys a `.mbbg` graph
//! cache by that triple under one directory, and the sweep binaries load
//! through it.
//!
//! A cached stand-in is a single self-describing `.mbbg` file: the
//! header's source stamp carries the generation identity instead of file
//! metadata ([`SourceStamp::generated`]) — a 64-bit FNV-1a key of
//! `name|max_edges|max_vertices|seed` plus the generator's `scale` and
//! `planted_half` provenance fields. No JSON sidecar.
//!
//! The cache directory defaults to `target/standin-cache`; the
//! `MBB_STANDIN_CACHE` environment variable overrides it (`off` disables
//! caching entirely). Stand-ins are bit-identical across machines for a
//! given triple, so a cache hit is always equivalent to regeneration —
//! any unreadable/corrupt/mismatched entry is silently regenerated and
//! rewritten.

use std::cell::Cell;
use std::path::PathBuf;

use mbb_datasets::{stand_in, DatasetSpec, ScaleCaps, StandIn};
use mbb_store::binfmt;
use mbb_store::SourceStamp;

/// A directory of `.mbbg`-cached stand-ins keyed by `(name, caps, seed)`.
#[derive(Debug)]
pub struct StandInCache {
    dir: Option<PathBuf>,
    hits: Cell<usize>,
    misses: Cell<usize>,
}

/// The 64-bit generation-parameter key stamped into a cached stand-in's
/// header: FNV-1a of `name|max_edges|max_vertices|seed`.
fn cache_key(spec: &DatasetSpec, caps: ScaleCaps, seed: u64) -> u64 {
    let text = format!(
        "{}|{}|{}|{seed}",
        spec.name, caps.max_edges, caps.max_vertices
    );
    binfmt::fnv1a64(text.as_bytes())
}

impl StandInCache {
    /// A cache honouring `MBB_STANDIN_CACHE` (a directory, or `off`);
    /// defaults to `target/standin-cache`.
    pub fn from_env() -> StandInCache {
        let dir = match std::env::var("MBB_STANDIN_CACHE") {
            Ok(v) if v == "off" || v == "0" => None,
            Ok(v) => Some(PathBuf::from(v)),
            Err(_) => Some(PathBuf::from("target/standin-cache")),
        };
        StandInCache::at(dir)
    }

    /// A cache at an explicit directory (`None` disables caching).
    pub fn at(dir: Option<PathBuf>) -> StandInCache {
        StandInCache {
            dir,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// The stand-in for a catalog entry: loaded from the cache when
    /// present, regenerated (and cached, best-effort) otherwise. The
    /// result is identical either way — generation is deterministic in
    /// `(spec, caps, seed)` and that whole triple is the cache key.
    pub fn get(&self, spec: &'static DatasetSpec, caps: ScaleCaps, seed: u64) -> StandIn {
        let Some(dir) = &self.dir else {
            return stand_in(spec, caps, seed);
        };
        let stem = format!(
            "{}-e{}-v{}-s{seed}",
            spec.name, caps.max_edges, caps.max_vertices
        );
        let graph_path = dir.join(format!("{stem}.mbbg"));
        let key = cache_key(spec, caps, seed);

        if let Some(standin) = self.try_load(spec, key, &graph_path) {
            self.hits.set(self.hits.get() + 1);
            return standin;
        }

        self.misses.set(self.misses.get() + 1);
        let standin = stand_in(spec, caps, seed);
        let stamp = SourceStamp::generated(key, standin.scale, standin.planted_half);
        // Best-effort write: a read-only checkout just regenerates forever.
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = binfmt::save_graph(&standin.graph, stamp, &graph_path);
        }
        standin
    }

    fn try_load(
        &self,
        spec: &'static DatasetSpec,
        key: u64,
        graph_path: &std::path::Path,
    ) -> Option<StandIn> {
        let (graph, stamp) = binfmt::load_graph(graph_path).ok()?;
        // A stale entry (written for other parameters, or by the old
        // sidecar-era writer, whose stamp is all zeros) must regenerate.
        if stamp.generated_key() != key {
            return None;
        }
        Some(StandIn {
            graph,
            spec,
            scale: stamp.generated_scale(),
            planted_half: stamp.generated_planted_half(),
        })
    }

    /// One-line hit/miss summary for the end of a sweep.
    pub fn summary(&self) -> String {
        match &self.dir {
            Some(dir) => format!(
                "stand-in cache {}: {} hits, {} misses",
                dir.display(),
                self.hits.get(),
                self.misses.get()
            ),
            None => "stand-in cache off".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbb_datasets::find;

    #[test]
    fn disabled_cache_just_generates() {
        let cache = StandInCache::at(None);
        let spec = find("unicodelang").unwrap();
        let s = cache.get(spec, ScaleCaps::small(), 1);
        assert!(s.graph.num_edges() > 0);
        assert_eq!(cache.summary(), "stand-in cache off");
    }

    #[test]
    fn cache_roundtrip_is_identical_to_generation() {
        let dir = std::env::temp_dir().join(format!("mbb-standin-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = StandInCache::at(Some(dir.clone()));
        let spec = find("moreno-crime-crime").unwrap();

        let cold = cache.get(spec, ScaleCaps::small(), 5);
        let warm = cache.get(spec, ScaleCaps::small(), 5);
        assert_eq!(cache.hits.get(), 1);
        assert_eq!(cache.misses.get(), 1);
        assert_eq!(warm.scale, cold.scale);
        assert_eq!(warm.planted_half, cold.planted_half);
        assert_eq!(warm.graph.left_offsets(), cold.graph.left_offsets());
        assert_eq!(warm.graph.left_neighbors(), cold.graph.left_neighbors());
        assert_eq!(warm.graph.right_offsets(), cold.graph.right_offsets());
        assert_eq!(warm.graph.right_neighbors(), cold.graph.right_neighbors());

        // The entry is exactly one self-describing .mbbg — no sidecar.
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().into_string().unwrap())
            .collect();
        assert_eq!(files.len(), 1, "{files:?}");
        assert!(files[0].ends_with(".mbbg"), "{files:?}");

        // A fresh generation agrees too (determinism + faithful cache).
        let direct = stand_in(spec, ScaleCaps::small(), 5);
        assert_eq!(direct.graph.left_neighbors(), warm.graph.left_neighbors());

        // Different seed, different entry.
        let other = cache.get(spec, ScaleCaps::small(), 6);
        assert_eq!(cache.misses.get(), 2);
        assert!(
            other.graph.num_edges() != warm.graph.num_edges()
                || other.graph.left_neighbors() != warm.graph.left_neighbors()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_regenerate() {
        let dir = std::env::temp_dir().join(format!("mbb-standin-corrupt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = StandInCache::at(Some(dir.clone()));
        let spec = find("opsahl-ucforum").unwrap();
        cache.get(spec, ScaleCaps::small(), 2);
        // Truncate the graph file: the next get must regenerate, not fail.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.path().extension().is_some_and(|x| x == "mbbg"))
            .unwrap();
        let bytes = std::fs::read(entry.path()).unwrap();
        std::fs::write(entry.path(), &bytes[..bytes.len() / 2]).unwrap();
        let again = cache.get(spec, ScaleCaps::small(), 2);
        assert!(again.graph.num_edges() > 0);
        assert_eq!(cache.misses.get(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sidecar_era_entries_regenerate_with_a_stamped_header() {
        let dir = std::env::temp_dir().join(format!("mbb-standin-legacy-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = StandInCache::at(Some(dir.clone()));
        let spec = find("unicodelang").unwrap();
        let caps = ScaleCaps::small();
        let fresh = stand_in(spec, caps, 9);
        // Plant an old-format entry: default (all-zero) stamp, as the
        // sidecar-era writer produced.
        std::fs::create_dir_all(&dir).unwrap();
        let stem = format!(
            "{}-e{}-v{}-s9",
            spec.name, caps.max_edges, caps.max_vertices
        );
        binfmt::save_graph(
            &fresh.graph,
            SourceStamp::default(),
            &dir.join(format!("{stem}.mbbg")),
        )
        .unwrap();

        // Keyless entry → miss + rewrite; second get is a hit with the
        // provenance fields restored from the header alone.
        let first = cache.get(spec, caps, 9);
        assert_eq!(cache.misses.get(), 1);
        let second = cache.get(spec, caps, 9);
        assert_eq!(cache.hits.get(), 1);
        assert_eq!(second.scale, fresh.scale);
        assert_eq!(second.planted_half, fresh.planted_half);
        assert_eq!(first.graph.left_neighbors(), second.graph.left_neighbors());
        std::fs::remove_dir_all(&dir).ok();
    }
}
