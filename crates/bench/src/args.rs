//! Minimal `--key value` argument parsing shared by the harness binaries.

use std::collections::HashMap;
use std::time::Duration;

use mbb_datasets::ScaleCaps;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--flag`s from `std::env::args`.
    pub fn from_env() -> Args {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Args {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                continue;
            };
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(key.to_string(), iter.next().expect("peeked"));
                }
                _ => flags.push(key.to_string()),
            }
        }
        Args { values, flags }
    }

    /// String value of `--key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Presence of a bare `--flag`.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Parsed numeric value with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Per-run time budget (`--budget-secs`, default given).
    pub fn budget(&self, default_secs: u64) -> Duration {
        Duration::from_secs(self.get_u64("budget-secs", default_secs))
    }

    /// Stand-in scale caps (`--caps small|default|large`).
    pub fn caps(&self) -> ScaleCaps {
        match self.get("caps") {
            Some("small") => ScaleCaps::small(),
            Some("large") => ScaleCaps {
                max_edges: 200_000,
                max_vertices: 150_000,
            },
            _ => ScaleCaps::default(),
        }
    }

    /// Base random seed (`--seed`, default 42).
    pub fn seed(&self) -> u64 {
        self.get_u64("seed", 42)
    }

    /// Comma-separated list value.
    pub fn get_list(&self, key: &str) -> Option<Vec<String>> {
        self.get(key)
            .map(|v| v.split(',').map(str::to_string).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = parse("--budget-secs 30 --full --caps small");
        assert_eq!(a.get("budget-secs"), Some("30"));
        assert!(a.flag("full"));
        assert_eq!(a.get("caps"), Some("small"));
        assert!(!a.flag("missing"));
    }

    #[test]
    fn numeric_defaults() {
        let a = parse("--budget-secs x");
        assert_eq!(a.get_u64("budget-secs", 7), 7);
        assert_eq!(a.get_u64("absent", 9), 9);
    }

    #[test]
    fn budget_and_caps() {
        let a = parse("--budget-secs 5 --caps large");
        assert_eq!(a.budget(60), Duration::from_secs(5));
        assert_eq!(a.caps().max_edges, 200_000);
        let d = parse("");
        assert_eq!(d.budget(60), Duration::from_secs(60));
        assert_eq!(d.caps().max_edges, ScaleCaps::default().max_edges);
    }

    #[test]
    fn lists() {
        let a = parse("--datasets github,jester");
        assert_eq!(
            a.get_list("datasets"),
            Some(vec!["github".to_string(), "jester".to_string()])
        );
    }
}
