//! Experiment harness regenerating every table and figure of the MBB paper.
//!
//! One binary per artefact:
//!
//! | Binary   | Paper artefact | What it prints |
//! |----------|----------------|----------------|
//! | `table4` | Table 4        | dense grid: extBBClq vs denseMBB seconds |
//! | `table5` | Table 5        | 30 datasets: adp1–4, extBBClq, hbvMBB (+stage) |
//! | `table6` | Table 6        | tough datasets: hMBB/degOrder/bdegOrder/bd1–bd5/hbvMBB |
//! | `fig4`   | Figure 4       | heuristic gap to optimum (heuGlobal, heuLocal) |
//! | `fig5`   | Figure 5       | average search depth over δ̈ per order |
//! | `fig6`   | Figure 6       | average vertex-centred subgraph density per order |
//!
//! All binaries accept `--budget-secs N`, `--caps small|default|large`,
//! `--seed N` and print GitHub-flavoured Markdown so results paste straight
//! into `EXPERIMENTS.md`.
//!
//! Stand-ins load through [`StandInCache`] — a `.mbbg` binary cache under
//! `target/standin-cache` (override with `MBB_STANDIN_CACHE`, `off`
//! disables) — so repeated sweeps skip regeneration; each binary prints a
//! hit/miss summary to stderr.

#![warn(missing_docs)]

pub mod args;
pub mod kernels;
pub mod obs;
pub mod report;
pub mod runner;
pub mod standin_cache;

pub use args::Args;
pub use kernels::{run_kernel_bench, KernelBenchOptions};
pub use obs::{run_obs_bench, ObsBenchOptions, MAX_OVERHEAD_PCT};
pub use report::{fmt_seconds, KernelBenchReport, ObsBenchReport, Table};
pub use runner::{run_timed, run_with_timeout, TimedOutcome};
pub use standin_cache::StandInCache;

pub use mbb_datasets::ScaleCaps;
