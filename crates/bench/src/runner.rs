//! Timing helpers, including a hard wall-clock timeout for algorithms that
//! have no cooperative deadline (the paper's 4-hour cap, scaled down).

use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Result of a timed run.
#[derive(Debug, Clone)]
pub enum TimedOutcome<T> {
    /// Finished within the budget.
    Finished {
        /// The computed value.
        value: T,
        /// Wall-clock seconds.
        seconds: f64,
    },
    /// Budget exceeded (reported as `-` in the tables).
    TimedOut,
}

impl<T> TimedOutcome<T> {
    /// Seconds if finished.
    pub fn seconds(&self) -> Option<f64> {
        match self {
            TimedOutcome::Finished { seconds, .. } => Some(*seconds),
            TimedOutcome::TimedOut => None,
        }
    }

    /// The value if finished.
    pub fn value(&self) -> Option<&T> {
        match self {
            TimedOutcome::Finished { value, .. } => Some(value),
            TimedOutcome::TimedOut => None,
        }
    }
}

/// Runs `f` and reports wall-clock seconds.
pub fn run_timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// Runs `f` on a worker thread with a hard wall-clock budget.
///
/// On timeout the worker keeps running detached until the process exits —
/// the same behaviour as killing a benchmark run by deadline. Harness
/// binaries run one candidate at a time, so at most a handful of abandoned
/// workers can accumulate per invocation.
pub fn run_with_timeout<T: Send + 'static>(
    budget: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> TimedOutcome<T> {
    let (tx, rx) = mpsc::channel();
    let start = Instant::now();
    std::thread::Builder::new()
        .name("mbb-bench-worker".to_string())
        .stack_size(64 * 1024 * 1024) // deep exclude chains on big inputs
        .spawn(move || {
            let value = f();
            let _ = tx.send(value);
        })
        .expect("spawn worker");
    match rx.recv_timeout(budget) {
        Ok(value) => TimedOutcome::Finished {
            value,
            seconds: start.elapsed().as_secs_f64(),
        },
        Err(_) => TimedOutcome::TimedOut,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_timed_returns_value_and_time() {
        let (v, s) = run_timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn fast_function_finishes() {
        let out = run_with_timeout(Duration::from_secs(5), || 7u32);
        assert_eq!(out.value(), Some(&7));
        assert!(out.seconds().unwrap() < 5.0);
    }

    #[test]
    fn slow_function_times_out() {
        let out = run_with_timeout(Duration::from_millis(20), || {
            std::thread::sleep(Duration::from_secs(2));
            1u32
        });
        assert!(matches!(out, TimedOutcome::TimedOut));
        assert_eq!(out.seconds(), None);
    }
}
