//! The `bench-obs` runner: the observability overhead gate.
//!
//! Measures full end-to-end solves on seeded stand-ins twice — spans
//! **disabled** (the production default: every instrumentation point is
//! one relaxed load) and spans **enabled** (records flowing into the
//! per-thread rings, drained between timed runs) — and reports the
//! relative overhead. [`ObsBenchReport::validate`] enforces the gate:
//! the aggregate enabled-vs-disabled overhead must stay at or below
//! [`MAX_OVERHEAD_PCT`], so a regression that makes instrumentation
//! expensive fails `mbb bench-obs --check` in CI.
//!
//! Timing uses min-of-N wall clocks per mode (the standard robust
//! estimator for "how fast can this go"), with modes interleaved so a
//! frequency-governor drift hits both sides equally.

use std::time::Instant;

use mbb_core::MbbEngine;
use mbb_datasets::{catalog, tough_datasets, ScaleCaps};
use mbb_obs as obs;

use crate::report::{ObsBenchReport, ObsOverheadRun, OBS_BENCH_SCHEMA_VERSION};
use crate::standin_cache::StandInCache;

/// The overhead gate, in percent: enabled-spans solves may cost at most
/// this much more wall clock than disabled-spans solves, in aggregate.
pub const MAX_OVERHEAD_PCT: f64 = 3.0;

/// Options for [`run_obs_bench`].
#[derive(Debug, Clone)]
pub struct ObsBenchOptions {
    /// Base RNG seed for stand-in generation.
    pub seed: u64,
    /// Scale caps for the stand-ins.
    pub caps: ScaleCaps,
    /// Human label for `caps`, recorded in the report.
    pub caps_label: String,
    /// Fewer datasets and repetitions; for CI smoke runs.
    pub quick: bool,
}

impl ObsBenchOptions {
    /// Full-fidelity run at default caps.
    pub fn full(seed: u64) -> ObsBenchOptions {
        ObsBenchOptions {
            seed,
            caps: ScaleCaps::default(),
            caps_label: "default".into(),
            quick: false,
        }
    }

    /// Smoke-test run: small caps, fewer repetitions.
    pub fn quick(seed: u64) -> ObsBenchOptions {
        ObsBenchOptions {
            seed,
            caps: ScaleCaps::small(),
            caps_label: "small".into(),
            quick: true,
        }
    }
}

/// One timed solve; the spans the run recorded are drained (outside the
/// timed region, as the resident collector would) and counted.
fn timed_solve(graph: &mbb_bigraph::BipartiteGraph, spans: &mut u64) -> (f64, u64) {
    let engine = MbbEngine::new(graph.clone());
    let start = Instant::now();
    let result = engine.solve();
    let seconds = start.elapsed().as_secs_f64();
    obs::drain(|_record| *spans += 1);
    (seconds, result.stats.optimum_half as u64)
}

/// Runs the overhead benchmark and returns a validated report.
///
/// Flips the global span switch ([`mbb_obs::enable`]/[`mbb_obs::disable`]);
/// callers in a threaded test harness must serialise against other
/// span-toggling code. Spans are left disabled on return.
pub fn run_obs_bench(opts: &ObsBenchOptions, cache: &StandInCache) -> ObsBenchReport {
    let mut specs: Vec<&'static mbb_datasets::DatasetSpec> = tough_datasets()
        .into_iter()
        .take(if opts.quick { 1 } else { 2 })
        .collect();
    specs.extend(catalog().iter().take(if opts.quick { 2 } else { 3 }));
    let reps = if opts.quick { 5 } else { 3 };

    let mut runs = Vec::new();
    for spec in specs {
        let standin = cache.get(spec, opts.caps, opts.seed);
        let mut base_seconds = f64::INFINITY;
        let mut instrumented_seconds = f64::INFINITY;
        let mut base_optimum = 0;
        let mut instrumented_optimum = 0;
        let mut spans_recorded = 0u64;
        // Warm-up solve: page in the stand-in, build nothing persistent
        // (each timed solve constructs its own engine).
        let mut sink = 0u64;
        let _ = timed_solve(&standin.graph, &mut sink);
        for _ in 0..reps {
            obs::disable();
            let (seconds, optimum) = timed_solve(&standin.graph, &mut sink);
            base_seconds = base_seconds.min(seconds);
            base_optimum = optimum;
            obs::enable();
            let (seconds, optimum) = timed_solve(&standin.graph, &mut spans_recorded);
            instrumented_seconds = instrumented_seconds.min(seconds);
            instrumented_optimum = optimum;
        }
        obs::disable();
        runs.push(ObsOverheadRun {
            dataset: spec.name.into(),
            base_seconds,
            instrumented_seconds,
            base_optimum,
            instrumented_optimum,
            spans_recorded,
        });
    }

    let base_total: f64 = runs.iter().map(|r| r.base_seconds).sum();
    let instrumented_total: f64 = runs.iter().map(|r| r.instrumented_seconds).sum();
    let report = ObsBenchReport {
        schema_version: OBS_BENCH_SCHEMA_VERSION,
        seed: opts.seed,
        caps: opts.caps_label.clone(),
        max_overhead_pct: MAX_OVERHEAD_PCT,
        overhead_pct: (instrumented_total - base_total) / base_total * 100.0,
        runs,
    };
    report
        .validate()
        .expect("freshly generated report must validate");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One quick run end to end: the report validates, spans were
    /// actually recorded in the enabled half, and the switch is left
    /// off. Serialised by being the only test in this crate that
    /// touches the global span switch.
    #[test]
    fn quick_obs_bench_produces_a_valid_report() {
        let opts = ObsBenchOptions::quick(42);
        let cache = StandInCache::at(None);
        let report = run_obs_bench(&opts, &cache);
        assert!(!obs::is_enabled(), "bench must leave spans disabled");
        assert_eq!(report.schema_version, OBS_BENCH_SCHEMA_VERSION);
        assert!(!report.runs.is_empty());
        for run in &report.runs {
            assert_eq!(
                run.base_optimum, run.instrumented_optimum,
                "{}",
                run.dataset
            );
            assert!(
                run.spans_recorded > 0,
                "{}: enabled solves must record spans",
                run.dataset
            );
        }
    }
}
