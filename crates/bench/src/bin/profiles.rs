//! Dataset profile table — the structural quantities §6 characterises its
//! workloads with (density, max degree, δ, δ̈, butterflies), computed over
//! every KONECT stand-in, plus the paper-vs-found optimum column.
//!
//! ```text
//! cargo run -p mbb-bench --release --bin profiles -- [--caps small] [--tough]
//! ```

use mbb_bench::{Args, StandInCache, Table};
use mbb_bigraph::metrics::GraphProfile;
use mbb_core::MbbEngine;
use mbb_datasets::{catalog, tough_datasets};

fn main() {
    let args = Args::from_env();
    let cache = StandInCache::from_env();
    let caps = args.caps();
    let seed = args.seed();
    let specs: Vec<&'static mbb_datasets::DatasetSpec> = if args.flag("tough") {
        tough_datasets()
    } else {
        catalog().iter().collect()
    };

    println!("# Dataset profiles (stand-ins; δ̈ and butterflies per §5.3.1 / analysis modules)\n");

    let mut table = Table::new(&[
        "Dataset",
        "|L|",
        "|R|",
        "|E|",
        "d_max",
        "δ",
        "δ̈",
        "δ̈/d_max",
        "butterflies",
        "paper opt",
        "found opt",
    ]);

    for spec in specs {
        let standin = cache.get(spec, caps, seed);
        let graph = &standin.graph;
        let profile = GraphProfile::of(graph);
        let d_max = profile.left_degrees.max.max(profile.right_degrees.max);
        let found = MbbEngine::new(graph.clone()).solve();
        table.row(vec![
            spec.name.to_string(),
            profile.num_left.to_string(),
            profile.num_right.to_string(),
            profile.num_edges.to_string(),
            d_max.to_string(),
            profile.degeneracy.to_string(),
            profile.bidegeneracy.to_string(),
            format!("{:.2}", profile.bidegeneracy as f64 / d_max.max(1) as f64),
            profile.butterflies.to_string(),
            spec.optimum.to_string(),
            found.value.half_size().to_string(),
        ]);
    }
    table.print();
    println!(
        "\nδ̈ ≫ δ but δ̈ ≪ n throughout — the gap the O*(1.3803^δ̈) bound exploits.\n\
         `found opt` is the stand-in's optimum (planted ≥ paper's value by construction)."
    );
    eprintln!("{}", cache.summary());
}
