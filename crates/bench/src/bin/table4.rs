//! Table 4 — efficiency on dense bipartite graphs: `extBBClq` vs
//! `denseMBB` over the size × density grid.
//!
//! ```text
//! cargo run -p mbb-bench --release --bin table4 -- \
//!     [--sizes 128,256,512] [--reps 3] [--budget-secs 60] [--full]
//! ```
//!
//! `--full` runs the paper's complete grid (128…2048 — slow; see
//! EXPERIMENTS.md for why uniform dense instances are harder for this
//! implementation than the paper's testbed numbers suggest); the default
//! grid is 64/128/256 with a per-run budget.

use mbb_baselines::ext_bbclq;
use mbb_bench::{fmt_seconds, run_with_timeout, Args, Table, TimedOutcome};
use mbb_core::dense_mbb_graph;
use mbb_datasets::dense::{DenseCell, TABLE4_DENSITIES, TABLE4_SIZES};

fn main() {
    let args = Args::from_env();
    let budget = args.budget(60);
    let reps = args.get_u64("reps", 3);

    let sizes: Vec<u32> = if let Some(list) = args.get_list("sizes") {
        list.iter().filter_map(|s| s.parse().ok()).collect()
    } else if args.flag("full") {
        TABLE4_SIZES.to_vec()
    } else {
        vec![64, 128, 256]
    };

    println!("# Table 4 — dense bipartite graphs\n");
    println!(
        "budget = {}s per run, {} instance(s) per cell (paper: 100), times in seconds\n",
        budget.as_secs(),
        reps
    );

    let mut table = {
        let mut headers: Vec<String> = vec!["density".into()];
        for &side in &sizes {
            headers.push(format!("{side}x{side} extBBCl"));
            headers.push(format!("{side}x{side} denseMBB"));
        }
        Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>())
    };

    for &density in &TABLE4_DENSITIES {
        let mut row = vec![format!("{:.0}%", density * 100.0)];
        for &side in &sizes {
            let cell = DenseCell { side, density };

            let mut ext_total = 0.0;
            let mut ext_timeout = false;
            for rep in 0..reps {
                let graph = cell.instance(rep);
                match run_with_timeout(budget, move || ext_bbclq(&graph, Some(budget))) {
                    TimedOutcome::Finished { value, seconds } if !value.timed_out => {
                        ext_total += seconds;
                    }
                    _ => {
                        ext_timeout = true;
                        break;
                    }
                }
            }
            row.push(fmt_seconds(
                (!ext_timeout).then_some(ext_total / reps as f64),
            ));

            let mut dense_total = 0.0;
            let mut dense_timeout = false;
            let mut halves = Vec::new();
            for rep in 0..reps {
                let graph = cell.instance(rep);
                match run_with_timeout(budget, move || dense_mbb_graph(&graph)) {
                    TimedOutcome::Finished { value, seconds } => {
                        dense_total += seconds;
                        halves.push(value.biclique.half_size());
                    }
                    TimedOutcome::TimedOut => {
                        dense_timeout = true;
                        break;
                    }
                }
            }
            row.push(fmt_seconds(
                (!dense_timeout).then_some(dense_total / reps as f64),
            ));
            if !halves.is_empty() {
                eprintln!(
                    "  [{}x{} @ {:.0}%] MBB half sizes: {:?}",
                    side,
                    side,
                    density * 100.0,
                    halves
                );
            }
        }
        table.row(row);
    }

    table.print();
    println!("\n`-` = budget exceeded.");
}
