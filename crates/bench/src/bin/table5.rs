//! Table 5 — efficiency on (stand-ins of) the 30 sparse KONECT datasets:
//! `adp1`–`adp4`, `extBBClq` and `hbvMBB` running times plus the stage at
//! which `hbvMBB` terminates.
//!
//! ```text
//! cargo run -p mbb-bench --release --bin table5 -- \
//!     [--budget-secs 30] [--caps small|default|large] [--datasets a,b,...]
//! ```

use mbb_baselines::{all_adapted, ext_bbclq};
use mbb_bench::{
    fmt_seconds, run_timed, run_with_timeout, Args, StandInCache, Table, TimedOutcome,
};
use mbb_core::MbbEngine;
use mbb_datasets::catalog;

fn main() {
    let args = Args::from_env();
    let cache = StandInCache::from_env();
    let budget = args.budget(30);
    let caps = args.caps();
    let seed = args.seed();
    let filter = args.get_list("datasets");

    println!("# Table 5 — sparse bipartite graphs (synthetic stand-ins)\n");
    println!(
        "budget = {}s per run, caps = ({} edges, {} vertices), seed = {seed}\n",
        budget.as_secs(),
        caps.max_edges,
        caps.max_vertices
    );

    let mut table = Table::new(&[
        "Dataset",
        "|L|",
        "|R|",
        "Dens.e-4",
        "Paper opt",
        "Found opt",
        "adp1",
        "adp2",
        "adp3",
        "adp4",
        "extBBCl",
        "hbvMBB",
        "Stage",
    ]);

    for spec in catalog() {
        if let Some(filter) = &filter {
            if !filter.iter().any(|f| f == spec.name) {
                continue;
            }
        }
        let standin = cache.get(spec, caps, seed);
        let graph = std::sync::Arc::new(standin.graph);

        // hbvMBB (ours) — also establishes the stand-in's true optimum.
        let solver_graph = graph.clone();
        let hbv = run_with_timeout(budget, move || {
            MbbEngine::from_arc(solver_graph, Default::default()).solve()
        });
        let (found_opt, stage) = match &hbv {
            TimedOutcome::Finished { value, .. } => (
                value.value.half_size().to_string(),
                value.stats.stage.to_string(),
            ),
            TimedOutcome::TimedOut => ("?".into(), "-".into()),
        };

        // Baselines, each under the same budget (cooperative deadline).
        let mut adp_secs: Vec<Option<f64>> = Vec::new();
        for baseline in all_adapted() {
            let (out, secs) = run_timed(|| baseline.run(&graph, Some(budget)));
            adp_secs.push((!out.timed_out).then_some(secs));
        }
        let (ext, ext_secs) = run_timed(|| ext_bbclq(&graph, Some(budget)));
        let ext_cell = (!ext.timed_out).then_some(ext_secs);

        table.row(vec![
            spec.name.to_string(),
            graph.num_left().to_string(),
            graph.num_right().to_string(),
            format!("{:.3}", graph.density() * 1e4),
            spec.optimum.to_string(),
            found_opt,
            fmt_seconds(adp_secs[0]),
            fmt_seconds(adp_secs[1]),
            fmt_seconds(adp_secs[2]),
            fmt_seconds(adp_secs[3]),
            fmt_seconds(ext_cell),
            fmt_seconds(hbv.seconds()),
            stage,
        ]);
    }

    table.print();
    println!("\n`-` = budget exceeded (the paper's 4 h timeout, scaled).");
    println!("`Paper opt` is the real-dataset optimum; `Found opt` is the stand-in's.");
    eprintln!("{}", cache.summary());
}
