//! Figure 6 — evaluation of vertex-centred subgraphs: the average density
//! of the generated subgraphs under the three total orders, per tough
//! dataset.
//!
//! ```text
//! cargo run -p mbb-bench --release --bin fig6 -- [--caps default]
//! ```

use mbb_bench::{Args, StandInCache, Table};
use mbb_bigraph::order::SearchOrder;
use mbb_core::{MbbEngine, SolverConfig};
use mbb_datasets::tough_datasets;

fn main() {
    let args = Args::from_env();
    let cache = StandInCache::from_env();
    let caps = args.caps();
    let seed = args.seed();

    println!("# Figure 6 — average density of vertex-centred subgraphs per order\n");

    let orders = [
        ("maxDeg", SearchOrder::Degree),
        ("degeneracy", SearchOrder::Degeneracy),
        ("bidegeneracy", SearchOrder::Bidegeneracy),
    ];

    let mut table = Table::new(&[
        "Dataset",
        "density maxDeg",
        "density degeneracy",
        "density bidegeneracy",
        "max size maxDeg",
        "max size degeneracy",
        "max size bidegeneracy",
    ]);

    for spec in tough_datasets() {
        let standin = cache.get(spec, caps, seed);
        let mut densities = Vec::new();
        let mut sizes = Vec::new();
        for (_, order) in orders {
            let config = SolverConfig {
                order,
                ..Default::default()
            };
            let result = MbbEngine::with_config(standin.graph.clone(), config).solve();
            densities.push(result.stats.avg_subgraph_density);
            sizes.push(result.stats.max_subgraph_size as f64);
        }
        table.row(vec![
            format!("{} ({})", spec.name, spec.tough_label().unwrap_or_default()),
            format!("{:.4}", densities[0]),
            format!("{:.4}", densities[1]),
            format!("{:.4}", densities[2]),
            format!("{:.0}", sizes[0]),
            format!("{:.0}", sizes[1]),
            format!("{:.0}", sizes[2]),
        ]);
    }
    table.print();
    println!("\nDensity 0 means the solver exited before bridging (stage S1).");
    eprintln!("{}", cache.summary());
}
