//! Regenerates the entire `results/` directory: every table and figure
//! binary, each teed to its Markdown file.
//!
//! ```text
//! cargo run -p mbb-bench --release --bin all -- [--out results]
//!     [--quick] [--budget-secs N] [--caps small|default|large] [--seed N]
//! ```
//!
//! `--quick` trades fidelity for wall time (small caps, 10 s budgets,
//! table4 capped at 128²) — useful as a smoke pass; drop it for the
//! numbers quoted in EXPERIMENTS.md.

use std::path::Path;
use std::process::Command;

use mbb_bench::Args;

/// The harness binaries, in regeneration order.
const TARGETS: &[&str] = &[
    "table4",
    "table5",
    "table6",
    "fig4",
    "fig5",
    "fig6",
    "fig7_scaling",
    "profiles",
];

fn main() {
    let args = Args::from_env();
    let out_dir = args.get("out").unwrap_or("results").to_string();
    let quick = args.flag("quick");
    std::fs::create_dir_all(&out_dir).expect("results directory is creatable");

    // Arguments forwarded to every child.
    let mut forwarded: Vec<String> = Vec::new();
    if let Some(budget) = args.get("budget-secs") {
        forwarded.extend(["--budget-secs".into(), budget.into()]);
    } else if quick {
        forwarded.extend(["--budget-secs".into(), "10".into()]);
    }
    if let Some(caps) = args.get("caps") {
        forwarded.extend(["--caps".into(), caps.into()]);
    } else if quick {
        forwarded.extend(["--caps".into(), "small".into()]);
    }
    forwarded.extend(["--seed".into(), args.seed().to_string()]);

    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin directory");

    let mut failures = Vec::new();
    for &target in TARGETS {
        let binary = bin_dir.join(target);
        if !binary.exists() {
            eprintln!(
                "skipping {target}: {} not built (run with --release --bins)",
                binary.display()
            );
            failures.push(target);
            continue;
        }
        let mut child_args = forwarded.clone();
        if quick && target == "table4" {
            child_args.extend(["--sizes".into(), "64".into(), "--reps".into(), "1".into()]);
        }
        print!("running {target} ... ");
        let output = Command::new(&binary)
            .args(&child_args)
            .output()
            .expect("child spawns");
        let out_path = Path::new(&out_dir).join(format!("{target}.md"));
        std::fs::write(&out_path, &output.stdout).expect("result file writes");
        if output.status.success() {
            println!("ok → {}", out_path.display());
        } else {
            println!("FAILED (exit {:?})", output.status.code());
            eprintln!("{}", String::from_utf8_lossy(&output.stderr));
            failures.push(target);
        }
    }

    if failures.is_empty() {
        println!(
            "\nall {} artefacts regenerated into {out_dir}/",
            TARGETS.len()
        );
    } else {
        println!("\n{} artefact(s) failed: {failures:?}", failures.len());
        std::process::exit(1);
    }
}
