//! Figure 5 — evaluation of the search depth: average exhaustive-search
//! depth over `δ̈(·)` for the three total orders (maxDeg, degeneracy,
//! bidegeneracy) on the tough datasets.
//!
//! ```text
//! cargo run -p mbb-bench --release --bin fig5 -- [--caps default]
//! ```

use mbb_bench::{Args, StandInCache, Table};
use mbb_bigraph::bicore::bicore_decomposition;
use mbb_bigraph::order::SearchOrder;
use mbb_core::{MbbEngine, SolverConfig};
use mbb_datasets::tough_datasets;

fn main() {
    let args = Args::from_env();
    let cache = StandInCache::from_env();
    let caps = args.caps();
    let seed = args.seed();

    println!("# Figure 5 — average search depth over δ̈(·) per search order\n");

    let orders = [
        ("maxDeg", SearchOrder::Degree),
        ("degeneracy", SearchOrder::Degeneracy),
        ("bidegeneracy", SearchOrder::Bidegeneracy),
    ];

    let mut table = Table::new(&[
        "Dataset",
        "δ̈",
        "depth maxDeg",
        "depth degeneracy",
        "depth bidegeneracy",
        "ratio maxDeg",
        "ratio degeneracy",
        "ratio bidegeneracy",
    ]);

    for spec in tough_datasets() {
        let standin = cache.get(spec, caps, seed);
        let bidegeneracy = bicore_decomposition(&standin.graph).bidegeneracy.max(1);

        let mut depths = Vec::new();
        for (_, order) in orders {
            let config = SolverConfig {
                order,
                ..Default::default()
            };
            let result = MbbEngine::with_config(standin.graph.clone(), config).solve();
            depths.push(result.stats.search.average_depth());
        }

        table.row(vec![
            format!("{} ({})", spec.name, spec.tough_label().unwrap_or_default()),
            bidegeneracy.to_string(),
            format!("{:.2}", depths[0]),
            format!("{:.2}", depths[1]),
            format!("{:.2}", depths[2]),
            format!("{:.3}", depths[0] / bidegeneracy as f64),
            format!("{:.3}", depths[1] / bidegeneracy as f64),
            format!("{:.3}", depths[2] / bidegeneracy as f64),
        ]);
    }
    table.print();
    println!("\nDepth 0 means verification never branched (stage S1/S2 exit).");
    eprintln!("{}", cache.summary());
}
