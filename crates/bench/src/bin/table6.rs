//! Table 6 — breaking-down evaluation on the tough datasets: per-technique
//! times for `hMBB`, `degOrder`, `bdegOrder`, the `bd1`–`bd5` ablations and
//! full `hbvMBB`.
//!
//! ```text
//! cargo run -p mbb-bench --release --bin table6 -- \
//!     [--budget-secs 60] [--caps default] [--datasets jester,...]
//! ```

use std::sync::Arc;

use mbb_bench::{fmt_seconds, run_timed, run_with_timeout, Args, Table, TimedOutcome};
use mbb_bigraph::bicore::bicore_decomposition;
use mbb_bigraph::core_decomp::core_decomposition;
use mbb_core::heuristic::hmbb;
use mbb_core::{MbbEngine, SolverConfig};
use mbb_datasets::{stand_in, tough_datasets};

fn main() {
    let args = Args::from_env();
    let budget = args.budget(60);
    let caps = args.caps();
    let seed = args.seed();
    let filter = args.get_list("datasets");

    println!("# Table 6 — efficiency of the techniques on tough datasets\n");
    println!("budget = {}s per run, times in seconds\n", budget.as_secs());

    let mut table = Table::new(&[
        "Dataset",
        "hMBB",
        "degOrder",
        "bdegOrder",
        "bd1",
        "bd2",
        "bd3",
        "bd4",
        "bd5",
        "hbvMBB",
    ]);

    for spec in tough_datasets() {
        if let Some(filter) = &filter {
            if !filter.iter().any(|f| f == spec.name) {
                continue;
            }
        }
        let standin = stand_in(spec, caps, seed);
        let graph = Arc::new(standin.graph);

        // Heuristic stage alone.
        let (_, hmbb_secs) = run_timed(|| hmbb(&graph, 8, true));
        // Order computations alone.
        let (_, deg_secs) = run_timed(|| core_decomposition(&graph));
        let (_, bdeg_secs) = run_timed(|| bicore_decomposition(&graph));

        let variants: [(&str, SolverConfig); 6] = [
            ("bd1", SolverConfig::bd1()),
            ("bd2", SolverConfig::bd2()),
            ("bd3", SolverConfig::bd3()),
            ("bd4", SolverConfig::bd4()),
            ("bd5", SolverConfig::bd5()),
            ("hbvMBB", SolverConfig::default()),
        ];
        let mut cells: Vec<String> = Vec::new();
        let mut halves: Vec<String> = Vec::new();
        for (name, config) in variants {
            let g = graph.clone();
            let outcome = run_with_timeout(budget, move || MbbEngine::from_arc(g, config).solve());
            cells.push(fmt_seconds(outcome.seconds()));
            if let TimedOutcome::Finished { value, .. } = &outcome {
                halves.push(format!("{name}={}", value.value.half_size()));
            }
        }
        eprintln!("  [{}] optima: {}", spec.name, halves.join(" "));

        table.row(vec![
            format!("{} ({})", spec.name, spec.tough_label().unwrap_or_default()),
            fmt_seconds(Some(hmbb_secs)),
            fmt_seconds(Some(deg_secs)),
            fmt_seconds(Some(bdeg_secs)),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            cells[4].clone(),
            cells[5].clone(),
        ]);
    }

    table.print();
    println!("\n`-` = budget exceeded.");
}
