//! Extension experiment ("Figure 7") — intra-subgraph vs. subgraph-level
//! thread scaling through the `MbbEngine` query API.
//!
//! PR 2's version of this study split the *verification stage's
//! subgraphs* across workers and found the honest Amdahl ceiling: on
//! skewed graphs one vertex-centred subgraph (size bounded by δ̈ + 1)
//! carries most of the search nodes, so subgraph-level parallelism goes
//! near-flat exactly where parallelism is needed most. This version
//! measures the fix — `ParallelMode::IntraSubgraph`, which splits the
//! branch-and-bound *inside* each large subgraph
//! (`dense_mbb_parallel`) — against that old subgraph-level mode on a
//! deliberately skewed Chung–Lu instance.
//!
//! One engine is built per instance and pre-warmed, so the cached
//! bidegeneracy order and bicore decomposition are shared by every timed
//! solve; speedups isolate the parallel search stages rather than
//! re-measuring preprocessing. The reported MBB size must be identical at
//! every thread count and in both modes (the parallel split is a
//! partition of the serial search space; the binary exits non-zero if
//! sizes ever disagree, which CI exercises).
//!
//! ```text
//! cargo run -p mbb-bench --release --bin fig7_scaling -- [--seed 42]
//!     [--caps small|default|large] [--threads 1,2,4,8]
//! ```

use std::time::Instant;

use mbb_bench::{fmt_seconds, Args, Table};
use mbb_bigraph::bicore::bicore_decomposition;
use mbb_bigraph::generators::{chung_lu_bipartite, ChungLuParams};
use mbb_core::verify::ParallelMode;
use mbb_core::MbbEngine;

fn mode_label(mode: ParallelMode) -> &'static str {
    match mode {
        ParallelMode::IntraSubgraph => "intra",
        ParallelMode::Subgraph => "subgraph",
        ParallelMode::Auto => "auto",
    }
}

fn main() {
    let args = Args::from_env();
    let seed = args.seed();
    let small = args.caps().max_edges <= 50_000;
    let threads: Vec<usize> = args
        .get_list("threads")
        .map(|list| {
            list.iter()
                .map(|t| {
                    t.parse().unwrap_or_else(|_| {
                        eprintln!("--threads: bad number {t:?}");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("# Figure 7 (extension) — intra-subgraph vs. subgraph-level thread scaling\n");
    println!("{cores} core(s) available to this run.\n");

    let mut table = Table::new(&[
        "n/side",
        "|E|",
        "δ̈",
        "mode",
        "threads",
        "MBB",
        "seconds",
        "speedup",
        "nodes",
        "steal/skip",
    ]);

    // Skewed, verify-dominated instances: steep power-law weights
    // concentrate the edges on a dense hub region, so ≥ 85% of the solve
    // is stage-3 exhaustive search and one hub-centred subgraph (size
    // ≈ δ̈ + 1) carries almost all of its nodes — the regime where
    // subgraph-level parallelism goes flat.
    let shapes: &[(u32, usize, f64)] = if small {
        &[(180, 15_500, 0.55)]
    } else {
        &[(350, 49_000, 0.9), (400, 60_000, 0.8)]
    };

    let mut size_mismatch = false;
    for &(n, edges, exponent) in shapes {
        let graph = chung_lu_bipartite(
            &ChungLuParams {
                num_left: n,
                num_right: n,
                num_edges: edges,
                left_exponent: exponent,
                right_exponent: exponent,
            },
            seed,
        );
        let bidegeneracy = bicore_decomposition(&graph).bidegeneracy;
        let engine = MbbEngine::new(graph);
        // Warm the session so every timed solve sees the cached indices.
        engine.solve();

        // The 1-thread engine path — the baseline both modes are measured
        // against (with one worker the two modes are the same algorithm).
        let start = Instant::now();
        let serial = engine.query().threads(1).solve();
        let baseline = start.elapsed().as_secs_f64();
        let serial_half = serial.value.half_size();
        table.row(vec![
            n.to_string(),
            edges.to_string(),
            bidegeneracy.to_string(),
            "serial".into(),
            "1".into(),
            serial_half.to_string(),
            fmt_seconds(Some(baseline)),
            "1.00x".into(),
            serial.stats.search.nodes.to_string(),
            "-".into(),
        ]);

        for &mode in &[ParallelMode::IntraSubgraph, ParallelMode::Subgraph] {
            for &t in &threads {
                if t <= 1 {
                    continue;
                }
                let start = Instant::now();
                let result = engine.query().threads(t).parallel_mode(mode).solve();
                let seconds = start.elapsed().as_secs_f64();
                let half = result.value.half_size();
                if half != serial_half {
                    size_mismatch = true;
                }
                let search = &result.stats.search;
                table.row(vec![
                    n.to_string(),
                    edges.to_string(),
                    bidegeneracy.to_string(),
                    mode_label(mode).into(),
                    t.to_string(),
                    half.to_string(),
                    fmt_seconds(Some(seconds)),
                    format!("{:.2}x", baseline / seconds.max(1e-9)),
                    search.nodes.to_string(),
                    format!("{}/{}", search.tasks_stolen, search.tasks_skipped),
                ]);
            }
        }
    }
    table.print();
    println!(
        "\nReading: all rows share one pre-warmed engine session per instance.\n\
         `intra` splits the branch-and-bound inside each large vertex-centred\n\
         subgraph across workers (shared atomic incumbent, work-stealing task\n\
         frontier); `subgraph` is PR 2's mode, splitting whole subgraphs across\n\
         workers. On skewed instances like these the largest subgraph carries\n\
         most of the search, so `subgraph` stays near 1.0x while `intra` scales\n\
         with the cores available — on a single-core machine both are flat and\n\
         only the steal/skip counters show the pool at work. The MBB column\n\
         must be identical in every row: the parallel split partitions the\n\
         serial search space and prunes only against realised bicliques."
    );
    if size_mismatch {
        eprintln!("ERROR: parallel solve reported a different MBB size than serial");
        std::process::exit(1);
    }
}
