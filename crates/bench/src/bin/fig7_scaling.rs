//! Extension experiment ("Figure 7") — empirical support for the
//! O*(1.3803^δ̈) claim: solver cost tracks the bidegeneracy of the graph
//! the exhaustive search actually runs on (the Lemma 4-reduced residual),
//! not the vertex count.
//!
//! Two sweeps over seeded Chung–Lu graphs reaching the same maximum edge
//! count (192 000):
//!
//! * **size sweep** — average degree held fixed while `n` grows 8×: the
//!   residual after heuristic + reduction stays small, and so do the
//!   search node counts and wall time;
//! * **density sweep** — `n` held fixed while the edge count grows 8×:
//!   the residual (and its δ̈) climbs, and the search cost climbs with it
//!   — orders of magnitude at the same final |E| as the size sweep.
//!
//! ```text
//! cargo run -p mbb-bench --release --bin fig7_scaling -- [--seed 42]
//! ```

use std::time::Instant;

use mbb_bench::{fmt_seconds, Args, Table};
use mbb_bigraph::bicore::bicore_decomposition;
use mbb_bigraph::generators::{chung_lu_bipartite, ChungLuParams};
use mbb_core::MbbSolver;

fn run_row(table: &mut Table, label: String, n: u32, edges: usize, seed: u64) {
    let graph = chung_lu_bipartite(
        &ChungLuParams {
            num_left: n,
            num_right: n,
            num_edges: edges,
            left_exponent: 0.75,
            right_exponent: 0.75,
        },
        seed,
    );
    let bidegeneracy = bicore_decomposition(&graph).bidegeneracy;
    let start = Instant::now();
    let result = MbbSolver::new().solve(&graph);
    let seconds = start.elapsed().as_secs_f64();
    // δ̈ of the Lemma 4-reduced residual — 0 when stage 1 already proved
    // optimality (no residual survives).
    let residual_bidegeneracy = result.stats.bidegeneracy;
    table.row(vec![
        label,
        n.to_string(),
        edges.to_string(),
        bidegeneracy.to_string(),
        residual_bidegeneracy.to_string(),
        result.biclique.half_size().to_string(),
        result.stats.search.nodes.to_string(),
        result.stats.search.max_depth.to_string(),
        fmt_seconds(Some(seconds)),
    ]);
}

fn main() {
    let args = Args::from_env();
    let seed = args.seed();

    println!("# Figure 7 (extension) — cost scales with the residual δ̈, not n\n");

    let mut table = Table::new(&[
        "sweep",
        "n/side",
        "|E|",
        "δ̈ raw",
        "δ̈ residual",
        "MBB",
        "search nodes",
        "max depth",
        "seconds",
    ]);

    // Size sweep: average degree 6 per left vertex throughout.
    for &n in &[4_000u32, 8_000, 16_000, 32_000] {
        run_row(&mut table, "size".into(), n, n as usize * 6, seed);
    }
    // Density sweep: n fixed, edges grow 8x.
    for &edges in &[24_000usize, 48_000, 96_000, 192_000] {
        run_row(&mut table, "density".into(), 4_000, edges, seed ^ 1);
    }
    table.print();
    println!(
        "\nReading: both sweeps end at |E| = 192k, but the size sweep's residual\n\
         after heuristic + Lemma 4 reduction stays tiny (few search nodes, sub-\n\
         second) while the density sweep's residual bidegeneracy climbs and the\n\
         exhaustive-search cost climbs with it — cost follows δ̈ of what must be\n\
         searched, not n or |E|."
    );
}
