//! Extension experiment ("Figure 7") — verification-stage thread scaling
//! through the `MbbEngine` query API.
//!
//! One engine is built per instance; the 1/2/4/8-thread solves all run
//! against that session, so the bidegeneracy order and bicore
//! decomposition are computed once and every solve after the first reuses
//! them (the `idx reuse` column shows the session counters). Reported
//! speedups therefore isolate the parallel verify stage rather than
//! re-measuring preprocessing.
//!
//! Instances are seeded Chung–Lu graphs dense enough that stage 3
//! (exhaustive verification) dominates — sparse instances terminate in
//! stage 1 and have nothing to parallelise. Expect modest ratios: on
//! skewed-degree graphs a single vertex-centred subgraph (size bounded
//! by δ̈ + 1, and δ̈ is large here) carries most of the search nodes, so
//! subgraph-level parallelism is Amdahl-bound by that one subgraph.
//!
//! ```text
//! cargo run -p mbb-bench --release --bin fig7_scaling -- [--seed 42]
//!     [--caps small|default|large] [--threads 1,2,4,8]
//! ```

use std::time::Instant;

use mbb_bench::{fmt_seconds, Args, Table};
use mbb_bigraph::bicore::bicore_decomposition;
use mbb_bigraph::generators::{chung_lu_bipartite, ChungLuParams};
use mbb_core::MbbEngine;

fn main() {
    let args = Args::from_env();
    let seed = args.seed();
    let small = args.caps().max_edges <= 50_000;
    let threads: Vec<usize> = args
        .get_list("threads")
        .map(|list| {
            list.iter()
                .map(|t| {
                    t.parse().unwrap_or_else(|_| {
                        eprintln!("--threads: bad number {t:?}");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);

    println!("# Figure 7 (extension) — verify-stage thread scaling on one engine session\n");

    let mut table = Table::new(&[
        "n/side",
        "|E|",
        "δ̈",
        "MBB",
        "threads",
        "seconds",
        "speedup",
        "idx (ord)",
    ]);

    // Dense-ish instances: the density sweep end of the old Figure 7,
    // where the exhaustive search is the bottleneck.
    let shapes: &[(u32, usize)] = if small {
        &[(500, 20_000), (700, 34_000)]
    } else {
        &[(2_000, 120_000), (4_000, 280_000)]
    };

    for &(n, edges) in shapes {
        let graph = chung_lu_bipartite(
            &ChungLuParams {
                num_left: n,
                num_right: n,
                num_edges: edges,
                left_exponent: 0.75,
                right_exponent: 0.75,
            },
            seed,
        );
        let bidegeneracy = bicore_decomposition(&graph).bidegeneracy;
        let engine = MbbEngine::new(graph);
        // Warm the session first so every timed solve sees the cached
        // indices — the speedup column then isolates the verify stage
        // instead of crediting thread 2+ with skipped preprocessing.
        engine.solve();
        let mut baseline = None;
        for &t in &threads {
            let start = Instant::now();
            let result = engine.query().threads(t).solve();
            let seconds = start.elapsed().as_secs_f64();
            let baseline = *baseline.get_or_insert(seconds);
            table.row(vec![
                n.to_string(),
                edges.to_string(),
                bidegeneracy.to_string(),
                result.value.half_size().to_string(),
                t.to_string(),
                fmt_seconds(Some(seconds)),
                format!("{:.2}x", baseline / seconds.max(1e-9)),
                format!(
                    "{}c/{}r",
                    result.stats.index.orders_computed, result.stats.index.orders_reused
                ),
            ]);
        }
    }
    table.print();
    println!(
        "\nReading: all thread counts share one (pre-warmed) engine session, so\n\
         the order column shows exactly one computation per instance (`1c`) and\n\
         growing reuse (`Nr`). The verification stage splits vertex-centred\n\
         subgraphs across workers, but per-subgraph cost is highly skewed (the\n\
         largest subgraph, bounded by δ̈ + 1, usually carries most search\n\
         nodes), so near-flat ratios here are the honest Amdahl ceiling of\n\
         subgraph-level parallelism — intra-subgraph (parallel denseMBB)\n\
         splitting is the ROADMAP follow-up this measurement motivates."
    );
}
