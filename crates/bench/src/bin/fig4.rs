//! Figure 4 — effectiveness of heuristics: gap between the heuristic
//! results (`heuGlobal` = step 1, `heuLocal` = after step 2) and the true
//! optimum, per tough dataset.
//!
//! ```text
//! cargo run -p mbb-bench --release --bin fig4 -- [--caps default]
//! ```

use mbb_bench::{Args, StandInCache, Table};
use mbb_core::MbbEngine;
use mbb_datasets::tough_datasets;

fn main() {
    let args = Args::from_env();
    let cache = StandInCache::from_env();
    let caps = args.caps();
    let seed = args.seed();

    println!("# Figure 4 — gap of heuristic results to the optimum MBB\n");

    let mut table = Table::new(&[
        "Dataset",
        "optimum",
        "heuGlobal",
        "heuLocal",
        "gapGlobal",
        "gapLocal",
    ]);
    for spec in tough_datasets() {
        let standin = cache.get(spec, caps, seed);
        let result = MbbEngine::new(standin.graph).solve();
        let optimum = result.stats.optimum_half;
        let global = result.stats.heuristic_global_half;
        let local = result.stats.heuristic_local_half;
        table.row(vec![
            format!("{} ({})", spec.name, spec.tough_label().unwrap_or_default()),
            optimum.to_string(),
            global.to_string(),
            local.to_string(),
            (optimum - global).to_string(),
            (optimum - local).to_string(),
        ]);
    }
    table.print();
    println!("\nGaps are in half-size units (the paper plots size gap to MBB).");
    eprintln!("{}", cache.summary());
}
