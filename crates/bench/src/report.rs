//! Markdown table rendering and the `BENCH_kernels.json` report schema.

use serde::{Deserialize, Serialize};

/// Formats seconds the way the paper's tables do: 3 significant-ish digits,
/// `-` for timeouts.
pub fn fmt_seconds(seconds: Option<f64>) -> String {
    match seconds {
        None => "-".to_string(),
        Some(s) if s < 0.01 => format!("{:.4}", s),
        Some(s) if s < 1.0 => format!("{:.3}", s),
        Some(s) if s < 100.0 => format!("{:.2}", s),
        Some(s) => format!("{:.0}", s),
    }
}

/// A Markdown table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Schema version stamped into `BENCH_kernels.json`; bump on layout changes.
pub const KERNEL_BENCH_SCHEMA_VERSION: u64 = 1;

/// One microbenchmark measurement: a single kernel on a single backend at a
/// fixed vector width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Kernel name (`and_popcount`, `and_assign_count`, ...).
    pub kernel: String,
    /// Backend the measurement ran on (`reference`, `blocked`, `sse2`,
    /// `avx2`). `reference` is the pre-kernel-layer scalar baseline.
    pub backend: String,
    /// Vector width in 64-bit words.
    pub words: usize,
    /// Nanoseconds per kernel invocation.
    pub ns_per_op: f64,
    /// Fold of the kernel outputs over the run. Identical inputs must give
    /// identical checksums on every backend — [`KernelBenchReport::validate`]
    /// rejects the file otherwise.
    pub checksum: u64,
}

/// Fused-vs-baseline summary for one kernel at one width: the measured
/// improvement the issue's evidence gate asks for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelImprovement {
    /// Kernel name.
    pub kernel: String,
    /// Vector width in 64-bit words.
    pub words: usize,
    /// `reference` backend ns/op (the pre-PR scalar loops).
    pub baseline_ns: f64,
    /// Best scalar fused backend (`blocked`) ns/op.
    pub fused_ns: f64,
    /// Best backend overall (including SIMD when compiled in) ns/op.
    pub best_ns: f64,
    /// `baseline_ns / fused_ns`.
    pub fused_speedup: f64,
    /// `baseline_ns / best_ns`.
    pub best_speedup: f64,
}

/// One end-to-end wall-clock measurement (fig4/table5-style solve) under a
/// pinned kernel backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndToEndTiming {
    /// Which paper artefact the run mirrors (`fig4`, `table5`).
    pub experiment: String,
    /// Stand-in dataset name.
    pub dataset: String,
    /// Backend the solve ran under (`reference` = pre-PR scalar loops,
    /// anything else = the fused dispatch).
    pub backend: String,
    /// Wall-clock seconds for the full solve.
    pub seconds: f64,
    /// Optimum half-size the solve returned; must agree across backends.
    pub optimum: u64,
}

/// The full `BENCH_kernels.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelBenchReport {
    /// [`KERNEL_BENCH_SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Base RNG seed the workload was generated from.
    pub seed: u64,
    /// Scale-caps label the end-to-end runs used (`small`/`default`/`large`).
    pub caps: String,
    /// Backends available on the machine that produced the file.
    pub backends: Vec<String>,
    /// Per-kernel microbenchmarks.
    pub kernels: Vec<KernelTiming>,
    /// Fused-vs-baseline summaries derived from `kernels`.
    pub improvements: Vec<KernelImprovement>,
    /// End-to-end fig4/table5 wall clock under pinned backends.
    pub end_to_end: Vec<EndToEndTiming>,
}

impl KernelBenchReport {
    /// Structural validity: finite positive timings, consistent checksums
    /// across backends, matching optima across end-to-end backends.
    ///
    /// Returns the first problem found, as a human-readable message.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != KERNEL_BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {KERNEL_BENCH_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.backends.is_empty() {
            return Err("no backends recorded".into());
        }
        if self.kernels.is_empty() {
            return Err("no kernel timings recorded".into());
        }
        let finite_positive = |what: &str, v: f64| -> Result<(), String> {
            if !v.is_finite() {
                return Err(format!("{what} is not finite ({v})"));
            }
            if v <= 0.0 {
                return Err(format!("{what} is not positive ({v})"));
            }
            Ok(())
        };
        for t in &self.kernels {
            if t.kernel.is_empty() || t.backend.is_empty() {
                return Err("kernel timing with empty kernel/backend name".into());
            }
            if t.words == 0 {
                return Err(format!("{}/{}: words == 0", t.kernel, t.backend));
            }
            finite_positive(
                &format!("{}/{}/w{} ns_per_op", t.kernel, t.backend, t.words),
                t.ns_per_op,
            )?;
            // Same kernel + width must yield the same checksum on every
            // backend: that is the bit-for-bit contract, restated in data.
            for other in &self.kernels {
                if other.kernel == t.kernel
                    && other.words == t.words
                    && other.checksum != t.checksum
                {
                    return Err(format!(
                        "checksum mismatch for {} at {} words: {} ({}) vs {} ({})",
                        t.kernel, t.words, t.checksum, t.backend, other.checksum, other.backend
                    ));
                }
            }
        }
        for imp in &self.improvements {
            finite_positive(&format!("{} baseline_ns", imp.kernel), imp.baseline_ns)?;
            finite_positive(&format!("{} fused_ns", imp.kernel), imp.fused_ns)?;
            finite_positive(&format!("{} best_ns", imp.kernel), imp.best_ns)?;
            finite_positive(&format!("{} fused_speedup", imp.kernel), imp.fused_speedup)?;
            finite_positive(&format!("{} best_speedup", imp.kernel), imp.best_speedup)?;
        }
        for e in &self.end_to_end {
            if !e.seconds.is_finite() || e.seconds < 0.0 {
                return Err(format!(
                    "{}/{}/{}: bad seconds {}",
                    e.experiment, e.dataset, e.backend, e.seconds
                ));
            }
            for other in &self.end_to_end {
                if other.experiment == e.experiment
                    && other.dataset == e.dataset
                    && other.optimum != e.optimum
                {
                    return Err(format!(
                        "optimum mismatch on {}/{}: {} ({}) vs {} ({})",
                        e.experiment, e.dataset, e.optimum, e.backend, other.optimum, other.backend
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Schema version stamped into `BENCH_obs.json`; bump on layout changes.
pub const OBS_BENCH_SCHEMA_VERSION: u64 = 1;

/// One dataset's spans-enabled vs spans-disabled solve comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsOverheadRun {
    /// Stand-in dataset name.
    pub dataset: String,
    /// Min-of-N full-solve wall clock with spans disabled (seconds).
    pub base_seconds: f64,
    /// Min-of-N full-solve wall clock with spans enabled (seconds).
    pub instrumented_seconds: f64,
    /// Optimum half-size of the disabled solves.
    pub base_optimum: u64,
    /// Optimum half-size of the enabled solves; must equal
    /// `base_optimum` — instrumentation must never change results.
    pub instrumented_optimum: u64,
    /// Span records drained from the enabled solves.
    pub spans_recorded: u64,
}

/// The full `BENCH_obs.json` document: the observability overhead gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsBenchReport {
    /// [`OBS_BENCH_SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Base RNG seed the stand-ins were generated from.
    pub seed: u64,
    /// Scale-caps label (`small`/`default`/`large`).
    pub caps: String,
    /// The gate this file was produced under (percent).
    pub max_overhead_pct: f64,
    /// Aggregate overhead: `(Σ instrumented − Σ base) / Σ base × 100`.
    /// Negative values (noise in instrumentation's favour) are fine.
    pub overhead_pct: f64,
    /// Per-dataset comparisons.
    pub runs: Vec<ObsOverheadRun>,
}

impl ObsBenchReport {
    /// Structural validity: finite timings, matching optima, spans
    /// actually recorded, and an `overhead_pct` that agrees with the
    /// per-run timings it claims to summarise.
    ///
    /// The overhead *gate* is separate — [`check_gate`](Self::check_gate)
    /// — so a freshly generated report on a noisy machine is still a
    /// well-formed artefact; only `--check` enforces the threshold.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != OBS_BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} != supported {OBS_BENCH_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.runs.is_empty() {
            return Err("no overhead runs recorded".into());
        }
        if !self.max_overhead_pct.is_finite() || self.max_overhead_pct <= 0.0 {
            return Err(format!("bad max_overhead_pct {}", self.max_overhead_pct));
        }
        if !self.overhead_pct.is_finite() {
            return Err(format!(
                "overhead_pct is not finite ({})",
                self.overhead_pct
            ));
        }
        for run in &self.runs {
            if run.dataset.is_empty() {
                return Err("run with empty dataset name".into());
            }
            for (what, v) in [
                ("base_seconds", run.base_seconds),
                ("instrumented_seconds", run.instrumented_seconds),
            ] {
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!("{}: bad {what} {v}", run.dataset));
                }
            }
            if run.base_optimum != run.instrumented_optimum {
                return Err(format!(
                    "{}: optimum changed under instrumentation: {} vs {}",
                    run.dataset, run.base_optimum, run.instrumented_optimum
                ));
            }
            if run.spans_recorded == 0 {
                return Err(format!(
                    "{}: no spans recorded — the enabled half measured nothing",
                    run.dataset
                ));
            }
        }
        let base: f64 = self.runs.iter().map(|r| r.base_seconds).sum();
        let instrumented: f64 = self.runs.iter().map(|r| r.instrumented_seconds).sum();
        let expected = (instrumented - base) / base * 100.0;
        if (expected - self.overhead_pct).abs() > 0.05 {
            return Err(format!(
                "overhead_pct {} disagrees with per-run timings (expected {expected:.3})",
                self.overhead_pct
            ));
        }
        Ok(())
    }

    /// The gate itself: fails when the measured aggregate overhead
    /// exceeds the report's threshold.
    pub fn check_gate(&self) -> Result<(), String> {
        if self.overhead_pct > self.max_overhead_pct {
            return Err(format!(
                "span overhead {:.2}% exceeds the {:.1}% gate",
                self.overhead_pct, self.max_overhead_pct
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(None), "-");
        assert_eq!(fmt_seconds(Some(0.001234)), "0.0012");
        assert_eq!(fmt_seconds(Some(0.123)), "0.123");
        assert_eq!(fmt_seconds(Some(3.456)), "3.46");
        assert_eq!(fmt_seconds(Some(217.4)), "217");
    }

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["name", "t"]);
        t.row(vec!["abc".into(), "1.0".into()]);
        t.row(vec!["a".into(), "12.5".into()]);
        let r = t.render();
        assert!(r.starts_with("| name | t    |\n| ---- | ---- |\n"));
        assert!(r.contains("| abc  | 1.0  |\n"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    fn sample_report() -> KernelBenchReport {
        KernelBenchReport {
            schema_version: KERNEL_BENCH_SCHEMA_VERSION,
            seed: 42,
            caps: "small".into(),
            backends: vec!["reference".into(), "blocked".into()],
            kernels: vec![
                KernelTiming {
                    kernel: "and_popcount".into(),
                    backend: "reference".into(),
                    words: 64,
                    ns_per_op: 41.5,
                    checksum: 0xfeed,
                },
                KernelTiming {
                    kernel: "and_popcount".into(),
                    backend: "blocked".into(),
                    words: 64,
                    ns_per_op: 20.25,
                    checksum: 0xfeed,
                },
            ],
            improvements: vec![KernelImprovement {
                kernel: "and_popcount".into(),
                words: 64,
                baseline_ns: 41.5,
                fused_ns: 20.25,
                best_ns: 20.25,
                fused_speedup: 41.5 / 20.25,
                best_speedup: 41.5 / 20.25,
            }],
            end_to_end: vec![
                EndToEndTiming {
                    experiment: "fig4".into(),
                    dataset: "dbpedia".into(),
                    backend: "reference".into(),
                    seconds: 0.51,
                    optimum: 7,
                },
                EndToEndTiming {
                    experiment: "fig4".into(),
                    dataset: "dbpedia".into(),
                    backend: "dispatch".into(),
                    seconds: 0.44,
                    optimum: 7,
                },
            ],
        }
    }

    #[test]
    fn kernel_report_round_trips_through_json() {
        let report = sample_report();
        report.validate().expect("sample is valid");
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: KernelBenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        back.validate().expect("round-tripped report is valid");
    }

    #[test]
    fn kernel_report_rejects_nan_and_nonpositive_timings() {
        let mut nan = sample_report();
        nan.kernels[0].ns_per_op = f64::NAN;
        assert!(nan.validate().unwrap_err().contains("not finite"));

        let mut inf = sample_report();
        inf.improvements[0].fused_speedup = f64::INFINITY;
        assert!(inf.validate().unwrap_err().contains("not finite"));

        let mut zero = sample_report();
        zero.kernels[1].ns_per_op = 0.0;
        assert!(zero.validate().unwrap_err().contains("not positive"));

        let mut neg = sample_report();
        neg.end_to_end[0].seconds = -1.0;
        assert!(neg.validate().unwrap_err().contains("bad seconds"));
    }

    fn sample_obs_report() -> ObsBenchReport {
        ObsBenchReport {
            schema_version: OBS_BENCH_SCHEMA_VERSION,
            seed: 42,
            caps: "small".into(),
            max_overhead_pct: 3.0,
            overhead_pct: (2.02 - 2.0) / 2.0 * 100.0,
            runs: vec![ObsOverheadRun {
                dataset: "dbpedia".into(),
                base_seconds: 2.0,
                instrumented_seconds: 2.02,
                base_optimum: 7,
                instrumented_optimum: 7,
                spans_recorded: 123,
            }],
        }
    }

    #[test]
    fn obs_report_round_trips_through_json() {
        let report = sample_obs_report();
        report.validate().expect("sample is valid");
        report.check_gate().expect("1% is inside the gate");
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: ObsBenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        back.validate().expect("round-tripped report is valid");
    }

    #[test]
    fn obs_report_rejects_structural_problems() {
        let mut bad_schema = sample_obs_report();
        bad_schema.schema_version = 999;
        assert!(bad_schema
            .validate()
            .unwrap_err()
            .contains("schema_version"));

        let mut changed_optimum = sample_obs_report();
        changed_optimum.runs[0].instrumented_optimum = 9;
        assert!(changed_optimum
            .validate()
            .unwrap_err()
            .contains("optimum changed"));

        let mut no_spans = sample_obs_report();
        no_spans.runs[0].spans_recorded = 0;
        assert!(no_spans.validate().unwrap_err().contains("no spans"));

        let mut drifted = sample_obs_report();
        drifted.overhead_pct = 50.0;
        assert!(drifted.validate().unwrap_err().contains("disagrees"));

        let mut nan = sample_obs_report();
        nan.runs[0].base_seconds = f64::NAN;
        assert!(nan.validate().is_err());
    }

    #[test]
    fn obs_gate_trips_on_excess_overhead() {
        let mut report = sample_obs_report();
        report.runs[0].instrumented_seconds = 2.2; // +10%
        report.overhead_pct = (2.2 - 2.0) / 2.0 * 100.0;
        report.validate().expect("structurally fine");
        let err = report.check_gate().unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn kernel_report_rejects_cross_backend_disagreement() {
        let mut bad_checksum = sample_report();
        bad_checksum.kernels[1].checksum = 0xdead;
        assert!(bad_checksum
            .validate()
            .unwrap_err()
            .contains("checksum mismatch"));

        let mut bad_optimum = sample_report();
        bad_optimum.end_to_end[1].optimum = 8;
        assert!(bad_optimum
            .validate()
            .unwrap_err()
            .contains("optimum mismatch"));

        let mut bad_schema = sample_report();
        bad_schema.schema_version = 999;
        assert!(bad_schema
            .validate()
            .unwrap_err()
            .contains("schema_version"));
    }
}
