//! Markdown table rendering for harness output.

/// Formats seconds the way the paper's tables do: 3 significant-ish digits,
/// `-` for timeouts.
pub fn fmt_seconds(seconds: Option<f64>) -> String {
    match seconds {
        None => "-".to_string(),
        Some(s) if s < 0.01 => format!("{:.4}", s),
        Some(s) if s < 1.0 => format!("{:.3}", s),
        Some(s) if s < 100.0 => format!("{:.2}", s),
        Some(s) => format!("{:.0}", s),
    }
}

/// A Markdown table builder.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders GitHub-flavoured Markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(None), "-");
        assert_eq!(fmt_seconds(Some(0.001234)), "0.0012");
        assert_eq!(fmt_seconds(Some(0.123)), "0.123");
        assert_eq!(fmt_seconds(Some(3.456)), "3.46");
        assert_eq!(fmt_seconds(Some(217.4)), "217");
    }

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["name", "t"]);
        t.row(vec!["abc".into(), "1.0".into()]);
        t.row(vec!["a".into(), "12.5".into()]);
        let r = t.render();
        assert!(r.starts_with("| name | t    |\n| ---- | ---- |\n"));
        assert!(r.contains("| abc  | 1.0  |\n"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
