//! The `bench-kernels` runner: per-kernel ns/op across every available
//! backend, plus end-to-end fig4/table5-style wall clock under a pinned
//! backend, emitted as a validated [`KernelBenchReport`].
//!
//! The `reference` backend is the pre-kernel-layer scalar code preserved
//! verbatim in `mbb_bigraph::kernels::reference`, so a report compares the
//! fused kernels against the true pre-PR baseline on the same machine and
//! the same inputs. Checksums fold every kernel output into the report;
//! [`KernelBenchReport::validate`] rejects a file whose backends disagree.
//!
//! Workloads are seeded: two runs with the same options produce identical
//! non-timing fields (kernels, widths, checksums, optima) — only the
//! measured nanoseconds move.

use std::hint::black_box;
use std::time::Instant;

use mbb_bigraph::kernels::{self, available_backends, force_backend, Backend};
use mbb_core::MbbEngine;
use mbb_datasets::{catalog, tough_datasets, ScaleCaps};

use crate::report::{
    EndToEndTiming, KernelBenchReport, KernelImprovement, KernelTiming, KERNEL_BENCH_SCHEMA_VERSION,
};
use crate::standin_cache::StandInCache;

/// Vector widths (in 64-bit words) the microbenches sweep: a hot L1-resident
/// candidate row (4 = 256 vertices), a mid row, a full cache line ×8, and a
/// large multi-KiB row where streaming throughput dominates.
pub const BENCH_WIDTHS: [usize; 4] = [4, 16, 64, 512];

/// How many distinct operand pairs each measurement rotates through, so the
/// branch predictor cannot memorise a single input.
const POOL: usize = 8;

/// Rows per `multi_and_popcount` batch.
const MULTI_ROWS: usize = 8;

/// Options for [`run_kernel_bench`].
#[derive(Debug, Clone)]
pub struct KernelBenchOptions {
    /// Base RNG seed for workload generation.
    pub seed: u64,
    /// Scale caps for the end-to-end stand-ins.
    pub caps: ScaleCaps,
    /// Human label for `caps` (`small`/`default`/`large`), recorded in the
    /// report.
    pub caps_label: String,
    /// Cut iteration counts ~32× and skip the larger stand-ins; for CI
    /// smoke runs where only schema/shape is asserted, not timing quality.
    pub quick: bool,
}

impl KernelBenchOptions {
    /// Full-fidelity run at default caps.
    pub fn full(seed: u64) -> KernelBenchOptions {
        KernelBenchOptions {
            seed,
            caps: ScaleCaps::default(),
            caps_label: "default".into(),
            quick: false,
        }
    }

    /// Smoke-test run: small caps, few iterations.
    pub fn quick(seed: u64) -> KernelBenchOptions {
        KernelBenchOptions {
            seed,
            caps: ScaleCaps::small(),
            caps_label: "small".into(),
            quick: true,
        }
    }
}

/// Splitmix-style seeded word generator; good enough dispersion for bench
/// operands and fully deterministic.
fn fill_words(seed: u64, out: &mut [u64]) {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    for w in out.iter_mut() {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        *w = z ^ (z >> 31);
    }
}

/// One measurement: runs `op` over `iters` rotations of the operand pool,
/// folding outputs into a checksum, and returns (ns_per_op, checksum).
fn measure(iters: usize, mut op: impl FnMut(usize) -> u64) -> (f64, u64) {
    // Warm-up pass: page in operands, settle the frequency governor.
    let mut checksum = 0u64;
    for i in 0..iters.div_ceil(16) {
        checksum = checksum.wrapping_add(black_box(op(i)));
    }
    // Best-of-3 timing; the checksum folds every rep identically.
    let mut best_ns = f64::INFINITY;
    for _ in 0..3 {
        checksum = 0;
        let start = Instant::now();
        for i in 0..iters {
            checksum = checksum.wrapping_add(black_box(op(i)));
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        best_ns = best_ns.min(ns);
    }
    (best_ns.max(0.001), checksum)
}

/// Microbench operand set for one width: `POOL` pairs of rows plus a batch
/// of rows for `multi_and_popcount`, all seeded.
struct Operands {
    a: Vec<Vec<u64>>,
    b: Vec<Vec<u64>>,
    rows: Vec<Vec<u64>>,
}

impl Operands {
    fn generate(seed: u64, words: usize) -> Operands {
        let make = |salt: u64, n: usize| -> Vec<Vec<u64>> {
            (0..n)
                .map(|i| {
                    let mut v = vec![0u64; words];
                    fill_words(
                        seed ^ salt.wrapping_mul(0x517cc1b727220a95) ^ (i as u64) << 17,
                        &mut v,
                    );
                    v
                })
                .collect()
        };
        Operands {
            a: make(1, POOL),
            b: make(2, POOL),
            rows: make(3, MULTI_ROWS),
        }
    }
}

/// Runs every microbench for the currently-forced backend and appends the
/// timings to `out`.
fn bench_backend(backend: Backend, seed: u64, iters_base: usize, out: &mut Vec<KernelTiming>) {
    for &words in &BENCH_WIDTHS {
        let ops = Operands::generate(seed, words);
        let iters = (iters_base / words).max(256);
        let mut scratch = vec![0u64; words];

        let mut push = |kernel: &str, ns: f64, checksum: u64| {
            out.push(KernelTiming {
                kernel: kernel.into(),
                backend: backend.name().into(),
                words,
                ns_per_op: ns,
                checksum,
            });
        };

        let (ns, sum) = measure(iters, |i| kernels::popcount(&ops.a[i % POOL]) as u64);
        push("popcount", ns, sum);

        let (ns, sum) = measure(iters, |i| {
            kernels::and_popcount(&ops.a[i % POOL], &ops.b[i % POOL]) as u64
        });
        push("and_popcount", ns, sum);

        let (ns, sum) = measure(iters, |i| {
            kernels::andnot_popcount(&ops.a[i % POOL], &ops.b[i % POOL]) as u64
        });
        push("andnot_popcount", ns, sum);

        let (ns, sum) = measure(iters, |i| {
            scratch.copy_from_slice(&ops.a[i % POOL]);
            kernels::and_assign_count(&mut scratch, &ops.b[i % POOL]) as u64
        });
        push("and_assign_count", ns, sum);

        let (ns, sum) = measure(iters, |i| {
            kernels::first_and(&ops.a[i % POOL], &ops.b[i % POOL]).map_or(u64::MAX, |v| v as u64)
        });
        push("first_and", ns, sum);

        let (ns, sum) = measure(iters, |i| {
            kernels::last_and(&ops.a[i % POOL], &ops.b[i % POOL]).map_or(u64::MAX, |v| v as u64)
        });
        push("last_and", ns, sum);

        let row_refs: Vec<&[u64]> = ops.rows.iter().map(|r| r.as_slice()).collect();
        let (ns, sum) = measure(iters.div_ceil(MULTI_ROWS), |i| {
            scratch.copy_from_slice(&ops.a[i % POOL]);
            kernels::multi_and_popcount(&mut scratch, &row_refs) as u64
        });
        push("multi_and_popcount", ns, sum);
    }
}

/// Derives fused-vs-baseline summaries from the raw timings.
fn improvements(timings: &[KernelTiming]) -> Vec<KernelImprovement> {
    let mut out = Vec::new();
    for &words in &BENCH_WIDTHS {
        let mut kernels_seen: Vec<&str> = Vec::new();
        for t in timings.iter().filter(|t| t.words == words) {
            if !kernels_seen.contains(&t.kernel.as_str()) {
                kernels_seen.push(&t.kernel);
            }
        }
        for kernel in kernels_seen {
            let of = |backend: &str| -> Option<f64> {
                timings
                    .iter()
                    .find(|t| t.kernel == kernel && t.words == words && t.backend == backend)
                    .map(|t| t.ns_per_op)
            };
            let (Some(baseline), Some(fused)) = (of("reference"), of("blocked")) else {
                continue;
            };
            let best = timings
                .iter()
                .filter(|t| t.kernel == kernel && t.words == words)
                .map(|t| t.ns_per_op)
                .fold(f64::INFINITY, f64::min);
            out.push(KernelImprovement {
                kernel: kernel.into(),
                words,
                baseline_ns: baseline,
                fused_ns: fused,
                best_ns: best,
                fused_speedup: baseline / fused,
                best_speedup: baseline / best,
            });
        }
    }
    out
}

/// Runs the fig4/table5-style end-to-end solves under a pinned backend.
fn bench_end_to_end(
    opts: &KernelBenchOptions,
    cache: &StandInCache,
    out: &mut Vec<EndToEndTiming>,
) {
    // fig4 flavour: heuristic-vs-optimum solve on tough stand-ins.
    // table5 flavour: full solve wall clock on sparse stand-ins.
    let fig4: Vec<_> = tough_datasets().into_iter().take(2).collect();
    let table5: Vec<_> = catalog()
        .iter()
        .take(if opts.quick { 2 } else { 3 })
        .collect();
    let runs = [("fig4", fig4), ("table5", table5)];

    for backend in [Some(Backend::Reference), None] {
        assert!(force_backend(backend), "backend unavailable");
        let label = backend.map_or("dispatch", |b| b.name());
        for (experiment, specs) in &runs {
            for spec in specs {
                let standin = cache.get(spec, opts.caps, opts.seed);
                let start = Instant::now();
                let result = MbbEngine::new(standin.graph).solve();
                let seconds = start.elapsed().as_secs_f64();
                out.push(EndToEndTiming {
                    experiment: (*experiment).into(),
                    dataset: spec.name.into(),
                    backend: label.into(),
                    seconds,
                    optimum: result.stats.optimum_half as u64,
                });
            }
        }
    }
    force_backend(None);
}

/// Runs the full kernel benchmark suite and returns a validated report.
///
/// Forces each backend in turn via [`force_backend`]; callers running in a
/// threaded test harness must serialise against other backend-forcing code.
/// Dispatch is restored to runtime detection before returning.
pub fn run_kernel_bench(opts: &KernelBenchOptions, cache: &StandInCache) -> KernelBenchReport {
    let backends = available_backends();
    let iters_base = if opts.quick { 32_768 } else { 8_388_608 };

    let mut timings = Vec::new();
    for &backend in &backends {
        assert!(force_backend(Some(backend)), "backend unavailable");
        bench_backend(backend, opts.seed, iters_base, &mut timings);
    }
    force_backend(None);

    let improvements = improvements(&timings);
    let mut end_to_end = Vec::new();
    bench_end_to_end(opts, cache, &mut end_to_end);

    let report = KernelBenchReport {
        schema_version: KERNEL_BENCH_SCHEMA_VERSION,
        seed: opts.seed,
        caps: opts.caps_label.clone(),
        backends: backends.iter().map(|b| b.name().to_string()).collect(),
        kernels: timings,
        improvements,
        end_to_end,
    };
    report
        .validate()
        .expect("freshly generated report must validate");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Everything except the measured nanoseconds: the deterministic
    /// projection two runs must agree on.
    fn shape(report: &KernelBenchReport) -> Vec<String> {
        let mut out = vec![format!(
            "v{} seed={} caps={} backends={:?}",
            report.schema_version, report.seed, report.caps, report.backends
        )];
        out.extend(
            report
                .kernels
                .iter()
                .map(|t| format!("{} {} w{} sum={}", t.kernel, t.backend, t.words, t.checksum)),
        );
        out.extend(
            report
                .improvements
                .iter()
                .map(|i| format!("imp {} w{}", i.kernel, i.words)),
        );
        out.extend(report.end_to_end.iter().map(|e| {
            format!(
                "{} {} {} opt={}",
                e.experiment, e.dataset, e.backend, e.optimum
            )
        }));
        out
    }

    #[test]
    fn quick_run_is_deterministic_and_valid() {
        let dir = std::env::temp_dir().join("mbb-bench-kernels-test-cache");
        let cache = StandInCache::at(Some(dir.clone()));
        let opts = KernelBenchOptions::quick(7);

        let first = run_kernel_bench(&opts, &cache);
        first.validate().expect("valid report");
        assert!(!first.kernels.is_empty());
        assert!(!first.improvements.is_empty());
        assert_eq!(
            first.end_to_end.len() % 2,
            0,
            "every end-to-end dataset runs under both backends"
        );

        // Determinism under the stand-in cache: the second run re-reads the
        // cached graphs and must reproduce every non-timing field.
        let second = run_kernel_bench(&opts, &cache);
        assert_eq!(shape(&first), shape(&second));

        // The JSON round trip preserves the report exactly.
        let text = serde_json::to_string_pretty(&first).unwrap();
        let back: KernelBenchReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, first);
        let _ = std::fs::remove_dir_all(dir);
    }
}
