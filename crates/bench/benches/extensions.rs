//! Criterion benches for the extension APIs and the `denseMBB` ablations.
//!
//! * `dense_ablation` — DESIGN.md's design-choice ablations: the Lemma 3
//!   polynomial case, the Lemma 1/2 reductions and the triviality-last
//!   branching each removed in turn from `denseMBB`.
//! * `enumerate` / `topk` — the maximal-biclique machinery.
//! * `butterfly` / `profile` — the analysis metrics.
//! * `incremental` — warm-started vs cold re-solve after one insertion.
//!
//! Run with `cargo bench -p mbb-bench --bench extensions`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::butterfly::count_butterflies;
use mbb_bigraph::generators::{chung_lu_bipartite, dense_uniform, ChungLuParams};
use mbb_bigraph::local::LocalGraph;
use mbb_bigraph::metrics::GraphProfile;
use mbb_core::dense::{dense_mbb_seeded, DenseConfig};
use mbb_core::enumerate::{all_maximal_bicliques, EnumConfig};
use mbb_core::incremental::IncrementalMbb;
use mbb_core::{MbbEngine, MbbSolver};

fn sparse_graph(n: u32, edges: usize, seed: u64) -> mbb_bigraph::BipartiteGraph {
    chung_lu_bipartite(
        &ChungLuParams {
            num_left: n,
            num_right: n,
            num_edges: edges,
            left_exponent: 0.75,
            right_exponent: 0.75,
        },
        seed,
    )
}

fn bench_dense_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_ablation");
    group.sample_size(10);
    let n = 28u32;
    let g = dense_uniform(n, n, 0.85, 11);
    let ids: Vec<u32> = (0..n).collect();
    let local = LocalGraph::induced(&g, &ids, &ids);
    let configs = [
        ("full", DenseConfig::default()),
        (
            "no_poly_case",
            DenseConfig {
                use_polynomial_case: false,
                ..DenseConfig::default()
            },
        ),
        (
            "no_reductions",
            DenseConfig {
                use_reductions: false,
                ..DenseConfig::default()
            },
        ),
        (
            "first_candidate_branch",
            DenseConfig {
                branch_max_missing: false,
                ..DenseConfig::default()
            },
        ),
    ];
    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::new("denseMBB", name), &config, |b, &config| {
            b.iter(|| {
                dense_mbb_seeded(
                    &local,
                    Vec::new(),
                    Vec::new(),
                    BitSet::full(local.num_left()),
                    BitSet::full(local.num_right()),
                    0,
                    config,
                )
            })
        });
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration");
    group.sample_size(10);
    let g = sparse_graph(2_000, 8_000, 3);
    group.bench_function("all_maximal_bicliques_2k", |b| {
        b.iter(|| all_maximal_bicliques(&g, &EnumConfig::default()))
    });
    for k in [1usize, 10] {
        group.bench_with_input(BenchmarkId::new("topk", k), &k, |b, &k| {
            let engine = MbbEngine::new(g.clone());
            b.iter(|| engine.topk(k))
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);
    for &n in &[2_000u32, 8_000] {
        let g = sparse_graph(n, n as usize * 4, 5);
        group.bench_with_input(BenchmarkId::new("butterflies", n), &g, |b, g| {
            b.iter(|| count_butterflies(g))
        });
        group.bench_with_input(BenchmarkId::new("profile_cheap", n), &g, |b, g| {
            b.iter(|| GraphProfile::cheap(g))
        });
    }
    group.finish();
}

/// The DESIGN.md representation ablation: candidate-set intersection —
/// the inner-loop operation of every reduction and branch — on the bitset
/// rows the workspace uses vs the sorted-adjacency alternative.
fn bench_representation(c: &mut Criterion) {
    use mbb_bigraph::graph::sorted_intersection_len;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut group = c.benchmark_group("representation");
    for &(n, density) in &[(256usize, 0.1f64), (256, 0.5), (256, 0.9), (2048, 0.1)] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut row_bits = BitSet::new(n);
        let mut cand_bits = BitSet::new(n);
        let mut row_vec: Vec<u32> = Vec::new();
        let mut cand_vec: Vec<u32> = Vec::new();
        for i in 0..n {
            if rng.gen_bool(density) {
                row_bits.insert(i);
                row_vec.push(i as u32);
            }
            if rng.gen_bool(density) {
                cand_bits.insert(i);
                cand_vec.push(i as u32);
            }
        }
        let label = format!("{n}@{density}");
        group.bench_with_input(
            BenchmarkId::new("bitset_intersection", &label),
            &(&row_bits, &cand_bits),
            |b, (row, cand)| b.iter(|| row.intersection_len(*cand)),
        );
        group.bench_with_input(
            BenchmarkId::new("sorted_vec_intersection", &label),
            &(&row_vec, &cand_vec),
            |b, (row, cand)| b.iter(|| sorted_intersection_len(row, cand)),
        );
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    let g = sparse_graph(4_000, 16_000, 9);
    group.bench_function("warm_resolve_after_insert", |b| {
        let mut inc = IncrementalMbb::from_graph(&g);
        inc.solve();
        let mut toggle = false;
        b.iter(|| {
            // Alternate insert/remove of the same edge so graph size stays
            // fixed across iterations.
            if toggle {
                inc.remove_edge(0, 0);
            } else {
                inc.insert_edge(0, 0).unwrap();
            }
            toggle = !toggle;
            inc.solve().biclique.half_size()
        })
    });
    group.bench_function("cold_resolve_after_insert", |b| {
        // A fresh engine per iteration: this is the *cold* baseline the
        // warm benches above are compared against, so no session reuse.
        b.iter(|| MbbEngine::new(g.clone()).solve().value.half_size())
    });
    group.bench_function("solver_cold_baseline", |b| {
        b.iter(|| MbbSolver::new().solve(&g).biclique.half_size())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_ablation,
    bench_enumeration,
    bench_metrics,
    bench_representation,
    bench_incremental
);
criterion_main!(benches);
