//! Criterion micro-benchmarks for the building blocks: decompositions,
//! orders, reductions and the exhaustive-search kernels.
//!
//! Run with `cargo bench -p mbb-bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mbb_bigraph::bicore::bicore_decomposition;
use mbb_bigraph::bitset::BitSet;
use mbb_bigraph::core_decomp::core_decomposition;
use mbb_bigraph::generators::{chung_lu_bipartite, dense_uniform, ChungLuParams};
use mbb_bigraph::local::LocalGraph;
use mbb_bigraph::order::{compute_order, SearchOrder};
use mbb_core::basic::basic_bb;
use mbb_core::dense::dense_mbb;
use mbb_core::reduce::reduce_candidates;
use mbb_core::stats::SearchStats;
use mbb_core::MbbSolver;

fn sparse_graph(n: u32, edges: usize, seed: u64) -> mbb_bigraph::BipartiteGraph {
    chung_lu_bipartite(
        &ChungLuParams {
            num_left: n,
            num_right: n,
            num_edges: edges,
            left_exponent: 0.75,
            right_exponent: 0.75,
        },
        seed,
    )
}

fn bench_decompositions(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition");
    group.sample_size(10);
    for &n in &[1_000u32, 4_000, 8_000] {
        let g = sparse_graph(n, n as usize * 4, 1);
        group.bench_with_input(BenchmarkId::new("core", n), &g, |b, g| {
            b.iter(|| core_decomposition(g))
        });
        group.bench_with_input(BenchmarkId::new("bicore", n), &g, |b, g| {
            b.iter(|| bicore_decomposition(g))
        });
    }
    group.finish();
}

fn bench_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("orders");
    let g = sparse_graph(4_000, 16_000, 2);
    for order in [
        SearchOrder::Degree,
        SearchOrder::Degeneracy,
        SearchOrder::Bidegeneracy,
    ] {
        group.bench_with_input(
            BenchmarkId::new("compute", order.to_string()),
            &order,
            |b, &order| b.iter(|| compute_order(&g, order)),
        );
    }
    group.finish();
}

fn bench_dense_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_kernels");
    group.sample_size(10);
    for &n in &[24u32, 32] {
        let g = dense_uniform(n, n, 0.85, 3);
        let ids: Vec<u32> = (0..n).collect();
        let local = LocalGraph::induced(&g, &ids, &ids);
        group.bench_with_input(BenchmarkId::new("denseMBB", n), &local, |b, local| {
            b.iter(|| dense_mbb(local, 0))
        });
        if n <= 24 {
            group.bench_with_input(BenchmarkId::new("basicBB", n), &local, |b, local| {
                b.iter(|| basic_bb(local, 0))
            });
        }
    }
    group.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let g = dense_uniform(256, 256, 0.9, 5);
    let ids: Vec<u32> = (0..256).collect();
    let local = LocalGraph::induced(&g, &ids, &ids);
    c.bench_function("reduce_candidates_256", |b| {
        b.iter(|| {
            let mut a = Vec::new();
            let mut bb = Vec::new();
            let mut ca = BitSet::full(256);
            let mut cb = BitSet::full(256);
            let mut stats = SearchStats::default();
            reduce_candidates(&local, &mut a, &mut bb, &mut ca, &mut cb, 128, &mut stats);
        })
    });
}

fn bench_solver_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("hbvMBB");
    group.sample_size(10);
    let g = sparse_graph(8_000, 32_000, 7);
    let (planted, _, _) = mbb_bigraph::generators::plant_balanced_biclique(&g, 10);
    group.bench_function("sparse_8k_planted10", |b| {
        b.iter(|| MbbSolver::new().solve(&planted))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decompositions,
    bench_orders,
    bench_dense_kernels,
    bench_reductions,
    bench_solver_end_to_end
);
criterion_main!(benches);
