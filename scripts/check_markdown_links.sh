#!/usr/bin/env bash
# Checks that every intra-repo markdown link resolves to an existing
# file or directory. External links (http/https/mailto) and pure
# anchors are skipped; `#section` suffixes on file links are stripped
# (anchor validity is not checked). Run from anywhere in the repo.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

broken=0
while IFS= read -r file; do
    dir="$(dirname "$file")"
    # Inline links: [text](target). Reference-style links are rare in
    # this repo; add them here if they ever appear.
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $file -> $target"
            broken=1
        fi
    done < <(
        # Strip fenced code blocks first: snippets quote other repos'
        # READMEs verbatim, and those links are not ours to keep valid.
        awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$file" |
            grep -oE '\]\([^)]+\)' | sed -E 's/^\]\(//; s/\)$//' || true
    )
done < <(find . -name '*.md' -not -path './vendor/*' -not -path './target/*' -not -path './.git/*')

if [ "$broken" -ne 0 ]; then
    echo "markdown link check failed" >&2
    exit 1
fi
echo "markdown links OK"
